#include <gtest/gtest.h>

#include "core/auction.hpp"

namespace xchain::core {
namespace {

AuctionConfig config() {
  AuctionConfig cfg;
  cfg.ticket_count = 10;
  cfg.bids = {100, 80};  // Bob (party 1) outbids Carol (party 2)
  cfg.premium_unit = 2;
  cfg.delta = 2;
  return cfg;
}

std::vector<BidderStrategy> conform(std::size_t n) {
  return std::vector<BidderStrategy>(n, BidderStrategy::kConform);
}

TEST(Auction, HonestAuctionCompletes) {
  const auto r = run_auction(config(), AuctioneerStrategy::kHonest,
                             conform(2));
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.tickets_to, 1u);  // Bob
  // Alice sells the tickets for the high bid; premiums round-trip.
  EXPECT_EQ(r.auctioneer.by_symbol.at("ticket"), -10);
  EXPECT_EQ(r.auctioneer.coin_delta, 100);
  // Bob pays his bid and gets the tickets; Carol is made whole.
  EXPECT_EQ(r.bidders[0].coin_delta, -100);
  EXPECT_EQ(r.bidders[0].by_symbol.at("ticket"), 10);
  EXPECT_EQ(r.bidders[1].coin_delta, 0);
}

TEST(Auction, AbandonCompensatesBidders) {
  // Alice walks away after setup: every bidder's locked bid is refunded
  // plus premium p (§9.2).
  const auto r = run_auction(config(), AuctioneerStrategy::kAbandon,
                             conform(2));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.tickets_to, 0u);  // back to Alice
  EXPECT_EQ(r.auctioneer.coin_delta, -4);  // 2 * p
  EXPECT_EQ(r.bidders[0].coin_delta, 2);
  EXPECT_EQ(r.bidders[1].coin_delta, 2);
}

TEST(Auction, NoSetupNothingHappens) {
  const auto r = run_auction(config(), AuctioneerStrategy::kNoSetup,
                             conform(2));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.auctioneer.coin_delta, 0);
  EXPECT_EQ(r.bidders[0].coin_delta, 0);
  EXPECT_TRUE(r.bidders[0].by_symbol.empty());
}

TEST(Auction, DeclaringLoserForfeitsPremiumsAndSale) {
  // Alice publishes the loser's hashkey: the coin contract detects the
  // cheat (a non-winner key arrived) and refunds all bids with premiums;
  // the ticket contract sees exactly one key and ships the tickets to
  // Carol — Alice gave them away for nothing (paper: "she could have done
  // that without an auction").
  const auto r = run_auction(config(), AuctioneerStrategy::kDeclareLoser,
                             conform(2));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.tickets_to, 2u);  // Carol
  EXPECT_EQ(r.auctioneer.coin_delta, -4);
  EXPECT_EQ(r.auctioneer.by_symbol.at("ticket"), -10);
  EXPECT_EQ(r.bidders[0].coin_delta, 2);
  EXPECT_EQ(r.bidders[1].coin_delta, 2);
  EXPECT_EQ(r.bidders[1].by_symbol.at("ticket"), 10);
}

TEST(Auction, OneSidedDeclarationFixedByChallenge) {
  // Lemma 7: a hashkey published on one contract is forwarded to the
  // other by compliant bidders, so the coin-only declaration completes
  // exactly like an honest one.
  for (auto strat : {AuctioneerStrategy::kCoinOnly,
                     AuctioneerStrategy::kTicketOnly}) {
    const auto r = run_auction(config(), strat, conform(2));
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.tickets_to, 1u);
    EXPECT_EQ(r.auctioneer.coin_delta, 100);
    EXPECT_EQ(r.bidders[0].coin_delta, -100);
    EXPECT_EQ(r.bidders[0].by_symbol.at("ticket"), 10);
  }
}

TEST(Auction, SplitDeclarationCaughtAndPunished) {
  // Winner's key on coins, loser's on tickets: after forwarding, the coin
  // contract holds both keys -> cheat -> refunds + premiums; the ticket
  // contract holds two keys -> tickets back to Alice.
  const auto r = run_auction(config(), AuctioneerStrategy::kSplit,
                             conform(2));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.tickets_to, 0u);
  EXPECT_EQ(r.auctioneer.coin_delta, -4);
  EXPECT_EQ(r.bidders[0].coin_delta, 2);
  EXPECT_EQ(r.bidders[1].coin_delta, 2);
}

TEST(Auction, SoreLoserBidderCannotWreckTheAuction) {
  // §9: the naive protocol let an angry loser cancel the auction by
  // withholding its commit vote. Here the loser has no such power: honest
  // Alice publishes on both chains herself.
  const auto r = run_auction(config(), AuctioneerStrategy::kHonest,
                             {BidderStrategy::kConform,
                              BidderStrategy::kNoForward});
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.tickets_to, 1u);
  EXPECT_EQ(r.bidders[0].by_symbol.at("ticket"), 10);
}

TEST(Auction, ShirkingForwarderOnlyHurtsItself) {
  // Coin-only declaration with BOTH bidders shirking: the winner's key
  // never reaches the ticket chain, so Bob pays without receiving — but
  // only because he failed his own (costless) forwarding duty. Lemma 8
  // protects compliant bidders only.
  const auto r = run_auction(config(), AuctioneerStrategy::kCoinOnly,
                             {BidderStrategy::kNoForward,
                              BidderStrategy::kNoForward});
  EXPECT_EQ(r.tickets_to, 0u);
  EXPECT_EQ(r.bidders[0].coin_delta, -100);
  EXPECT_EQ(r.bidders[0].by_symbol.count("ticket"), 0u);
}

TEST(Auction, NoBidsQuietlyUnwinds) {
  const auto r = run_auction(config(), AuctioneerStrategy::kHonest,
                             {BidderStrategy::kNoBid,
                              BidderStrategy::kNoBid});
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.auctioneer.coin_delta, 0);  // endowment returned
  EXPECT_EQ(r.tickets_to, 0u);
}

// Lemma 8 sweep: under every auctioneer strategy, compliant bidders never
// have a bid stolen: a bidder that loses coins gains the tickets.
class AuctionSweep
    : public ::testing::TestWithParam<AuctioneerStrategy> {};

TEST_P(AuctionSweep, CompliantBidsCannotBeStolen) {
  const auto r = run_auction(config(), GetParam(), conform(2));
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& d = r.bidders[i];
    if (d.coin_delta < 0) {
      ASSERT_TRUE(d.by_symbol.count("ticket"))
          << "bidder " << i << " paid without tickets";
      EXPECT_GT(d.by_symbol.at("ticket"), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, AuctionSweep,
    ::testing::Values(AuctioneerStrategy::kHonest,
                      AuctioneerStrategy::kNoSetup,
                      AuctioneerStrategy::kAbandon,
                      AuctioneerStrategy::kDeclareLoser,
                      AuctioneerStrategy::kCoinOnly,
                      AuctioneerStrategy::kTicketOnly,
                      AuctioneerStrategy::kSplit));

// n-bidder generalization: the auctioneer's endowment is n * p and every
// locked-up bidder is compensated on abandonment.
class AuctionScale : public ::testing::TestWithParam<int> {};

TEST_P(AuctionScale, AbandonCompensatesEveryBidder) {
  const int n = GetParam();
  AuctionConfig cfg = config();
  cfg.bids.clear();
  for (int i = 0; i < n; ++i) cfg.bids.push_back(50 + 10 * i);
  const auto r = run_auction(cfg, AuctioneerStrategy::kAbandon,
                             conform(static_cast<std::size_t>(n)));
  EXPECT_EQ(r.auctioneer.coin_delta, -2 * n);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(r.bidders[static_cast<std::size_t>(i)].coin_delta, 2);
  }
}

TEST_P(AuctionScale, HonestCompletesAtScale) {
  const int n = GetParam();
  AuctionConfig cfg = config();
  cfg.bids.clear();
  for (int i = 0; i < n; ++i) cfg.bids.push_back(50 + 10 * i);
  const auto r = run_auction(cfg, AuctioneerStrategy::kHonest,
                             conform(static_cast<std::size_t>(n)));
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.tickets_to, static_cast<PartyId>(n));  // highest bidder
  EXPECT_EQ(r.auctioneer.coin_delta, 50 + 10 * (n - 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, AuctionScale, ::testing::Values(2, 3, 5, 8));

}  // namespace
}  // namespace xchain::core
