#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/model_checker.hpp"

namespace xchain::analysis {
namespace {

TEST(ModelChecker, HedgedTwoPartyHasNoViolations) {
  core::TwoPartyConfig cfg;
  cfg.delta = 2;
  const auto report = check_hedged_two_party(cfg);
  EXPECT_EQ(report.scenarios_explored, 25u);  // (conform + halt 0..3)^2
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(ModelChecker, BaseTwoPartyExposesSoreLoser) {
  // The negative control: the §5.1 base protocol must FAIL the hedged
  // property (that is the paper's motivating flaw), and fail it only
  // there — safety violations would mean our base protocol is broken.
  core::TwoPartyConfig cfg;
  cfg.delta = 2;
  const auto report = check_base_two_party(cfg);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(std::all_of(
      report.violations.begin(), report.violations.end(),
      [](const Violation& v) { return v.property == "hedged"; }))
      << report.summary();
}

TEST(ModelChecker, BootstrapTwoRoundsClean) {
  core::BootstrapConfig cfg;
  cfg.rounds = 2;
  cfg.delta = 1;
  const auto report = check_bootstrap(cfg);
  EXPECT_EQ(report.scenarios_explored, 36u);  // (conform + halt 0..4)^2
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(ModelChecker, MultiPartyTwoVerticesClean) {
  core::MultiPartyConfig cfg;
  cfg.g = graph::Digraph::two_party();
  cfg.delta = 1;
  const auto report = check_multi_party(cfg);
  EXPECT_EQ(report.scenarios_explored, 36u);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(ModelChecker, MultiPartyFigure3aClean) {
  // 6^3 = 216 combinations, including multi-deviator ones.
  core::MultiPartyConfig cfg;
  cfg.g = graph::Digraph::figure3a();
  cfg.delta = 1;
  const auto report = check_multi_party(cfg);
  EXPECT_EQ(report.scenarios_explored, 216u);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(ModelChecker, BrokerClean) {
  core::BrokerConfig cfg;
  cfg.delta = 1;
  const auto report = check_broker(cfg);
  EXPECT_EQ(report.scenarios_explored, 216u);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(ModelChecker, AuctionClean) {
  core::AuctionConfig cfg;
  cfg.delta = 1;
  const auto report = check_auction(cfg);
  EXPECT_EQ(report.scenarios_explored, 63u);  // 7 * 3^2
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(ModelChecker, SummaryMentionsCounts) {
  core::TwoPartyConfig cfg;
  cfg.delta = 1;
  const auto report = check_hedged_two_party(cfg);
  EXPECT_NE(report.summary().find("25 scenarios"), std::string::npos);
}

}  // namespace
}  // namespace xchain::analysis
