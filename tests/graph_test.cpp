#include <gtest/gtest.h>

#include <algorithm>

#include "graph/digraph.hpp"

namespace xchain::graph {
namespace {

TEST(Digraph, BasicArcs) {
  Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_FALSE(g.has_arc(1, 0));
  EXPECT_EQ(g.arc_count(), 2u);
  g.add_arc(0, 1);  // duplicate ignored
  EXPECT_EQ(g.arc_count(), 2u);
  g.add_arc(1, 1);  // self-loop rejected
  EXPECT_EQ(g.arc_count(), 2u);
}

TEST(Digraph, NeighborLists) {
  const Digraph g = Digraph::figure3a();
  EXPECT_EQ(g.out_neighbors(1), (std::vector<Vertex>{0, 2}));  // B -> A, C
  EXPECT_EQ(g.in_neighbors(0), (std::vector<Vertex>{1, 2}));   // B, C -> A
}

TEST(Digraph, ArcsEnumeration) {
  const Digraph g = Digraph::figure3a();
  const auto arcs = g.arcs();
  ASSERT_EQ(arcs.size(), 4u);
  EXPECT_EQ(arcs[0], (Arc{0, 1}));
  EXPECT_EQ(arcs[1], (Arc{1, 0}));
  EXPECT_EQ(arcs[2], (Arc{1, 2}));
  EXPECT_EQ(arcs[3], (Arc{2, 0}));
}

TEST(Digraph, PathPredicate) {
  const Digraph g = Digraph::figure3a();
  // Arcs: A->B, B->A, B->C, C->A (A=0, B=1, C=2). Paths follow arcs.
  EXPECT_TRUE(g.is_path({0}));           // trivial
  EXPECT_TRUE(g.is_path({1, 0}));        // B->A
  EXPECT_TRUE(g.is_path({2, 0}));        // C->A
  EXPECT_TRUE(g.is_path({1, 2, 0}));     // B->C->A (Figure 3b's (B,C,A))
  EXPECT_FALSE(g.is_path({2, 1}));       // no arc C->B
  EXPECT_FALSE(g.is_path({0, 1, 0}));    // repeated vertex
  EXPECT_FALSE(g.is_path({}));
}

TEST(Digraph, ConcatNotation) {
  EXPECT_EQ(concat(5, {1, 2}), (Path{5, 1, 2}));
  EXPECT_EQ(concat(0, {}), (Path{0}));
}

TEST(Digraph, ClosesCycle) {
  const Digraph g = Digraph::figure3a();
  // A || (B, A): arc (A,B) connects, q=(B,A) is a path, ends at A: cycle.
  EXPECT_TRUE(g.closes_cycle(0, {1, 0}));
  // A || (B, C, A): arc (A,B) connects, q=(B,C,A) is a path, ends at A.
  EXPECT_TRUE(g.closes_cycle(0, {1, 2, 0}));
  // B || (C, A): q is a path but ends at A != B: not a cycle.
  EXPECT_FALSE(g.closes_cycle(1, {2, 0}));
  // C || (A, B): connecting pair (C, A) is an arc... but q must end at C.
  EXPECT_FALSE(g.closes_cycle(2, {0, 1}));
}

TEST(Digraph, SccOnFigure3a) {
  EXPECT_TRUE(Digraph::figure3a().strongly_connected());
}

TEST(Digraph, SccSplitsComponents) {
  Digraph g(4);
  g.add_arc(0, 1);
  g.add_arc(1, 0);
  g.add_arc(1, 2);
  g.add_arc(2, 3);
  g.add_arc(3, 2);
  const auto comp = g.scc();
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_FALSE(g.strongly_connected());
}

TEST(Digraph, SccSingletons) {
  Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  const auto comp = g.scc();
  EXPECT_NE(comp[0], comp[1]);
  EXPECT_NE(comp[1], comp[2]);
}

TEST(Digraph, CycleAndCompleteShapes) {
  const Digraph c = Digraph::cycle(4);
  EXPECT_EQ(c.arc_count(), 4u);
  EXPECT_TRUE(c.strongly_connected());
  const Digraph k = Digraph::complete(4);
  EXPECT_EQ(k.arc_count(), 12u);
  EXPECT_TRUE(k.strongly_connected());
  EXPECT_TRUE(Digraph::two_party().strongly_connected());
}

TEST(Digraph, FeedbackVertexSetOnCycle) {
  const Digraph g = Digraph::cycle(5);
  EXPECT_FALSE(g.is_feedback_vertex_set({}));
  EXPECT_TRUE(g.is_feedback_vertex_set({0}));
  EXPECT_TRUE(g.is_feedback_vertex_set({3}));
  EXPECT_EQ(g.minimum_feedback_vertex_set().size(), 1u);
}

TEST(Digraph, FeedbackVertexSetOnFigure3a) {
  const Digraph g = Digraph::figure3a();
  // Cycles: A->B->A and A->B->C->A; A and B each hit both.
  EXPECT_TRUE(g.is_feedback_vertex_set({0}));
  EXPECT_TRUE(g.is_feedback_vertex_set({1}));
  EXPECT_FALSE(g.is_feedback_vertex_set({2}));  // A->B->A survives
  EXPECT_EQ(g.minimum_feedback_vertex_set().size(), 1u);
}

TEST(Digraph, MinimumFvsOnCompleteGraph) {
  // K_n needs n-1 vertices removed to become acyclic.
  for (std::size_t n : {2u, 3u, 4u, 5u}) {
    EXPECT_EQ(Digraph::complete(n).minimum_feedback_vertex_set().size(),
              n - 1)
        << "n=" << n;
  }
}

TEST(Digraph, GreedyFvsIsValid) {
  for (std::size_t n : {3u, 5u, 8u}) {
    const Digraph g = Digraph::complete(n);
    EXPECT_TRUE(g.is_feedback_vertex_set(g.greedy_feedback_vertex_set()));
  }
  const Digraph fig = Digraph::figure3a();
  EXPECT_TRUE(fig.is_feedback_vertex_set(fig.greedy_feedback_vertex_set()));
}

TEST(Digraph, GreedyFvsEmptyOnAcyclic) {
  Digraph g(4);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.add_arc(2, 3);
  EXPECT_TRUE(g.greedy_feedback_vertex_set().empty());
}

TEST(Digraph, DiameterOfCycle) {
  EXPECT_EQ(Digraph::cycle(2).diameter(), 1u);
  EXPECT_EQ(Digraph::cycle(5).diameter(), 4u);
}

TEST(Digraph, DiameterOfComplete) {
  EXPECT_EQ(Digraph::complete(4).diameter(), 1u);
}

TEST(Digraph, DiameterOfFigure3a) {
  // d(A,C) = 2 via B; d(C,B) = 2 via A.
  EXPECT_EQ(Digraph::figure3a().diameter(), 2u);
}

TEST(Digraph, SimplePathsMatchFigure3b) {
  const Digraph g = Digraph::figure3a();
  // Figure 3b: hashkey k_A reaches arc (A,B) along paths (B,A) and (B,C,A).
  const auto paths = g.simple_paths(1, 0);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], (Path{1, 0}));
  EXPECT_EQ(paths[1], (Path{1, 2, 0}));
  // From C the only path to A is direct.
  const auto from_c = g.simple_paths(2, 0);
  ASSERT_EQ(from_c.size(), 1u);
  EXPECT_EQ(from_c[0], (Path{2, 0}));
}

TEST(Digraph, SimplePathCountsInCompleteGraph) {
  // K_4: paths from 0 to 1 = sum over subsets of intermediates:
  // 1 + 2 + 2 = 5 (direct, one intermediate x2, two intermediates x2).
  EXPECT_EQ(Digraph::complete(4).simple_paths(0, 1).size(), 5u);
}

TEST(Digraph, ToStringUsesLetters) {
  EXPECT_EQ(to_string({0, 1, 2}), "(A,B,C)");
  EXPECT_EQ(to_string({30}), "(30)");
}

}  // namespace
}  // namespace xchain::graph
