// The protocol registry + campaign layer: every registered protocol must
// build from its default ParamSet and sweep clean; malformed names, keys,
// and values must fail with descriptive errors (never UB); registry
// defaults must stay byte-identical to the historical hard-coded reference
// structs; and a grid campaign's report must be deterministic whatever the
// worker-thread count.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "sim/campaign.hpp"
#include "sim/param.hpp"
#include "sim/reference_configs.hpp"
#include "sim/registry.hpp"
#include "sim/scenario.hpp"

namespace xchain::sim {
namespace {

// ---------------------------------------------------------------------------
// ParamSet / ParamGrid
// ---------------------------------------------------------------------------

ParamSet demo_schema() {
  return ParamSet({
      ParamSpec::integer("count", 3, "a count").between(1, 10),
      ParamSpec::amount("tokens", 100, "an amount").at_least(0),
      ParamSpec::real("rate", 0.5, "a rate").between(0, 1),
      ParamSpec::text("label", "x", "a label"),
  });
}

TEST(ParamSet, DefaultsAndTypedGetters) {
  const ParamSet p = demo_schema();
  EXPECT_EQ(p.get_int("count"), 3);
  EXPECT_EQ(p.get_amount("tokens"), 100);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 0.5);
  EXPECT_EQ(p.get_string("label"), "x");
  EXPECT_FALSE(p.is_set("count"));
  EXPECT_EQ(p.overrides_str(), "");
}

TEST(ParamSet, SetParsesAndTracksOverrides) {
  ParamSet p = demo_schema();
  p.set("count", "7");
  p.set("rate", "0.25");
  p.set("label", "hello");
  EXPECT_EQ(p.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 0.25);
  EXPECT_EQ(p.get_string("label"), "hello");
  EXPECT_TRUE(p.is_set("count"));
  EXPECT_FALSE(p.is_set("tokens"));
  EXPECT_EQ(p.overrides_str(), "count=7 rate=0.25 label=hello");
}

TEST(ParamSet, UnknownKeyIsADescriptiveError) {
  ParamSet p = demo_schema();
  try {
    p.set("no_such_key", "1");
    FAIL() << "expected ParamError";
  } catch (const ParamError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no_such_key"), std::string::npos) << msg;
    EXPECT_NE(msg.find("count"), std::string::npos)
        << "message should list valid keys: " << msg;
  }
  EXPECT_THROW(p.get_int("no_such_key"), ParamError);
  EXPECT_THROW((void)demo_schema().get_string("count"), ParamError)
      << "type-mismatched reads must throw too";
}

TEST(ParamSet, OutOfBoundsAndUnparsableValuesThrow) {
  ParamSet p = demo_schema();
  EXPECT_THROW(p.set("count", "0"), ParamError);    // below [1, 10]
  EXPECT_THROW(p.set("count", "11"), ParamError);   // above
  EXPECT_THROW(p.set("count", "two"), ParamError);  // not an integer
  EXPECT_THROW(p.set("rate", "1.5"), ParamError);   // above [0, 1]
  EXPECT_THROW(p.set("rate", "nan"), ParamError);
  // Failed sets must not corrupt the current value.
  EXPECT_EQ(p.get_int("count"), 3);
}

TEST(ParamGrid, ExpandsCrossProductInDeclarationOrder) {
  ParamGrid grid;
  grid.add_axis_csv("count", "1,2");
  grid.add_axis_csv("label", "a,b,c");
  const GridExpansion ex = grid.expand(demo_schema());
  ASSERT_EQ(ex.total_points, 6u);
  ASSERT_EQ(ex.points.size(), 6u);
  EXPECT_FALSE(ex.truncated());
  // First axis varies slowest.
  EXPECT_EQ(ex.points[0].overrides_str(), "count=1 label=a");
  EXPECT_EQ(ex.points[1].overrides_str(), "count=1 label=b");
  EXPECT_EQ(ex.points[3].overrides_str(), "count=2 label=a");
}

TEST(ParamGrid, CapTruncatesLoudly) {
  ParamGrid grid;
  grid.add_axis_csv("count", "1,2,3,4,5");
  const GridExpansion ex = grid.expand(demo_schema(), /*cap=*/3);
  EXPECT_EQ(ex.total_points, 5u);
  EXPECT_EQ(ex.points.size(), 3u);
  EXPECT_TRUE(ex.truncated());
  EXPECT_NE(ex.truncation_report().find("5"), std::string::npos);
}

TEST(ParamGrid, BadAxisValueFailsBeforeAnySweep) {
  ParamGrid grid;
  grid.add_axis_csv("count", "1,zebra");
  EXPECT_THROW(grid.expand(demo_schema()), ParamError);
  ParamGrid unknown;
  unknown.add_axis_csv("no_such_key", "1");
  EXPECT_THROW(unknown.expand(demo_schema()), ParamError);
  // Even when the cap truncates before the bad value's row would
  // materialize, expansion must still reject it.
  ParamGrid capped;
  capped.add_axis_csv("count", "1,zebra");
  EXPECT_THROW(capped.expand(demo_schema(), /*cap=*/1), ParamError);
}

// ---------------------------------------------------------------------------
// Registry: coverage, defaults, errors
// ---------------------------------------------------------------------------

TEST(Registry, AllReferenceProtocolsAreRegistered) {
  const auto names = ProtocolRegistry::global().names();
  const std::vector<std::string> expected = {
      "two-party",    "multi-party-ring", "multi-party-fig3a",
      "auction-open", "auction-sealed",   "broker",
      "bootstrap",    "crr-ladder"};
  for (const std::string& name : expected) {
    EXPECT_TRUE(ProtocolRegistry::global().contains(name)) << name;
  }
  EXPECT_GE(names.size(), expected.size());
}

TEST(Registry, EveryProtocolBuildsFromDefaultsAndSweepsClean) {
  for (const std::string& name : ProtocolRegistry::global().names()) {
    SCOPED_TRACE(name);
    const auto adapter = ProtocolRegistry::global().make(name);
    ASSERT_NE(adapter, nullptr);
    const SweepReport report = ScenarioRunner(*adapter).sweep();
    EXPECT_GT(report.schedules_run, 0u);
    EXPECT_GT(report.conforming_audited, 0u);
    EXPECT_TRUE(report.ok()) << report.str();
  }
}

TEST(Registry, UnknownProtocolIsADescriptiveError) {
  try {
    ProtocolRegistry::global().make("no-such-protocol");
    FAIL() << "expected RegistryError";
  } catch (const RegistryError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-protocol"), std::string::npos) << msg;
    EXPECT_NE(msg.find("two-party"), std::string::npos)
        << "message should list registered names: " << msg;
  }
}

TEST(Registry, OutOfBoundsParamsAreRejectedNotUB) {
  ParamSet ring = ProtocolRegistry::global().defaults("multi-party-ring");
  EXPECT_THROW(ring.set("n", "1"), ParamError);   // a 1-cycle is not a swap
  EXPECT_THROW(ring.set("n", "99"), ParamError);  // 5^99 schedules: bounded
  EXPECT_THROW(ring.set("delta", "0"), ParamError);
  EXPECT_THROW(ring.set("premium_unit", "-1"), ParamError);
  ParamSet auction = ProtocolRegistry::global().defaults("auction-open");
  EXPECT_THROW(auction.set("bogus_key", "1"), ParamError);
  // Malformed bid lists surface as ParamError at factory time.
  auction.set("bids", "100,frog");
  EXPECT_THROW(ProtocolRegistry::global().make("auction-open", auction),
               ParamError);
}

// Registry defaults must stay byte-identical to the historical hard-coded
// reference structs (the numbers the whole PR-1..3 test/bench corpus was
// pinned on). reference_configs.hpp is now a shim over these defaults, so
// this is the single place the canonical numbers are spelled out.
TEST(Registry, DefaultsByteMatchLegacyReferenceStructs) {
  const core::TwoPartyConfig tp = reference_two_party_config();
  EXPECT_EQ(tp.alice_tokens, 100);
  EXPECT_EQ(tp.bob_tokens, 50);
  EXPECT_EQ(tp.premium_a, 2);
  EXPECT_EQ(tp.premium_b, 1);
  EXPECT_EQ(tp.delta, 2);

  const core::MultiPartyConfig mp = reference_multi_party_config();
  EXPECT_EQ(mp.g.size(), graph::Digraph::figure3a().size());
  EXPECT_EQ(mp.asset_amount, 100);
  EXPECT_EQ(mp.premium_unit, 1);
  EXPECT_EQ(mp.delta, 1);
  EXPECT_TRUE(mp.hedged);
  EXPECT_TRUE(mp.leaders.empty());

  const core::AuctionConfig au = reference_auction_config();
  EXPECT_EQ(au.ticket_count, 10);
  EXPECT_EQ(au.bids, (std::vector<Amount>{100, 80}));
  EXPECT_EQ(au.premium_unit, 2);
  EXPECT_EQ(au.delta, 2);
  EXPECT_EQ(au.collateral, 150);

  const core::BrokerConfig br = reference_broker_config();
  EXPECT_EQ(br.ticket_count, 10);
  EXPECT_EQ(br.sale_price, 101);
  EXPECT_EQ(br.purchase_price, 100);
  EXPECT_EQ(br.premium_unit, 1);
  EXPECT_EQ(br.delta, 1);

  const core::BootstrapConfig bs = reference_bootstrap_config();
  EXPECT_EQ(bs.alice_tokens, 1'000'000);
  EXPECT_EQ(bs.bob_tokens, 1'000'000);
  EXPECT_DOUBLE_EQ(bs.factor, 100.0);
  EXPECT_EQ(bs.rounds, 2);
  EXPECT_EQ(bs.delta, 2);
  EXPECT_TRUE(bs.apricot_premiums.empty());
  EXPECT_TRUE(bs.banana_premiums.empty());

  const core::BootstrapConfig crr = reference_crr_ladder_config();
  EXPECT_EQ(crr.alice_tokens, 100'000);
  EXPECT_EQ(crr.bob_tokens, 100'000);
  EXPECT_EQ(crr.rounds, 1);
  EXPECT_EQ(crr.delta, 2);

  // The crr-ladder schema's market defaults mirror CrrMarket's.
  const CrrMarket market =
      crr_market_from(ProtocolRegistry::global().defaults("crr-ladder"));
  const CrrMarket hard_coded;
  EXPECT_DOUBLE_EQ(market.volatility, hard_coded.volatility);
  EXPECT_DOUBLE_EQ(market.rate, hard_coded.rate);
  EXPECT_DOUBLE_EQ(market.ticks_per_year, hard_coded.ticks_per_year);
}

// Registry-built adapters must sweep bit-identically to adapters built
// straight from the legacy structs — the refactor is a pure re-plumbing.
TEST(Registry, RegistryAdaptersSweepIdenticalToLegacyConstruction) {
  struct Pair {
    std::unique_ptr<ProtocolAdapter> legacy;
    std::string registry_name;
  };
  std::vector<Pair> pairs;
  pairs.push_back({std::make_unique<TwoPartySwapAdapter>(
                       reference_two_party_config()),
                   "two-party"});
  pairs.push_back({std::make_unique<MultiPartySwapAdapter>(
                       reference_multi_party_config()),
                   "multi-party-fig3a"});
  pairs.push_back({std::make_unique<TicketAuctionAdapter>(
                       reference_auction_config(), /*sealed=*/true),
                   "auction-sealed"});
  pairs.push_back({std::make_unique<BrokerDealAdapter>(
                       reference_broker_config()),
                   "broker"});
  pairs.push_back({std::make_unique<BootstrapSwapAdapter>(
                       reference_bootstrap_config()),
                   "bootstrap"});
  pairs.push_back({std::make_unique<BootstrapSwapAdapter>(
                       make_crr_ladder_adapter(reference_crr_ladder_config())),
                   "crr-ladder"});
  for (const Pair& pair : pairs) {
    SCOPED_TRACE(pair.registry_name);
    const auto from_registry =
        ProtocolRegistry::global().make(pair.registry_name);
    const SweepReport a = ScenarioRunner(*pair.legacy).sweep();
    const SweepReport b = ScenarioRunner(*from_registry).sweep();
    EXPECT_EQ(a.protocol, b.protocol);
    EXPECT_EQ(a.schedules_run, b.schedules_run);
    EXPECT_EQ(a.conforming_audited, b.conforming_audited);
    EXPECT_EQ(a.violations.size(), b.violations.size());
  }
}

// ---------------------------------------------------------------------------
// Campaigns
// ---------------------------------------------------------------------------

CampaignSpec two_protocol_grid(unsigned threads) {
  CampaignSpec spec;
  CampaignEntry ring;
  ring.protocol = "multi-party-ring";
  ring.grid.add_axis_csv("n", "3,4");
  ring.grid.add_axis_csv("premium_unit", "1,2");
  spec.entries.push_back(std::move(ring));
  CampaignEntry two_party;
  two_party.protocol = "two-party";
  two_party.overrides.emplace_back("premium_b", "3");
  two_party.grid.add_axis_csv("premium_a", "1,2");
  spec.entries.push_back(std::move(two_party));
  spec.sweep.threads = threads;
  return spec;
}

void expect_identical(const CampaignReport& a, const CampaignReport& b) {
  ASSERT_EQ(a.configurations(), b.configurations());
  for (std::size_t i = 0; i < a.configs.size(); ++i) {
    SCOPED_TRACE(a.configs[i].line());
    EXPECT_EQ(a.configs[i].protocol, b.configs[i].protocol);
    EXPECT_EQ(a.configs[i].params, b.configs[i].params);
    EXPECT_EQ(a.configs[i].report.protocol, b.configs[i].report.protocol);
    EXPECT_EQ(a.configs[i].report.schedules_run,
              b.configs[i].report.schedules_run);
    EXPECT_EQ(a.configs[i].report.conforming_audited,
              b.configs[i].report.conforming_audited);
    ASSERT_EQ(a.configs[i].report.violations.size(),
              b.configs[i].report.violations.size());
    for (std::size_t v = 0; v < a.configs[i].report.violations.size(); ++v) {
      EXPECT_EQ(a.configs[i].report.violations[v].schedule,
                b.configs[i].report.violations[v].schedule);
    }
  }
  EXPECT_EQ(a.truncations, b.truncations);
}

TEST(Campaign, TwoProtocolGridIsDeterministicAcrossThreadCounts) {
  const CampaignReport serial = Campaign(two_protocol_grid(1)).run();
  // 2x2 ring grid + 2-point two-party grid.
  ASSERT_EQ(serial.configurations(), 6u);
  EXPECT_EQ(serial.configs[0].protocol, "multi-party-ring");
  EXPECT_EQ(serial.configs[0].params, "n=3 premium_unit=1");
  EXPECT_EQ(serial.configs[4].protocol, "two-party");
  EXPECT_EQ(serial.configs[4].params, "premium_a=1 premium_b=3");
  EXPECT_TRUE(serial.ok()) << serial.str();
  EXPECT_EQ(serial.total_schedules(),
            125u + 125u + 625u + 625u + 16u + 16u);

  const CampaignReport parallel = Campaign(two_protocol_grid(4)).run();
  expect_identical(serial, parallel);
  const CampaignReport hardware = Campaign(two_protocol_grid(0)).run();
  expect_identical(serial, hardware);
}

TEST(Campaign, SingleConfigurationUsesTheShardedSweep) {
  CampaignSpec spec;
  spec.entries.push_back({"multi-party-fig3a", {}, {}});
  spec.sweep.threads = 4;
  const CampaignReport report = Campaign(spec).run();
  ASSERT_EQ(report.configurations(), 1u);
  EXPECT_EQ(report.configs[0].params, "");
  EXPECT_EQ(report.configs[0].report.schedules_run, 125u);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST(Campaign, UnknownProtocolFailsBeforeAnySweep) {
  CampaignSpec spec;
  spec.entries.push_back({"no-such-protocol", {}, {}});
  EXPECT_THROW(Campaign(spec).run(), RegistryError);
  CampaignSpec empty;
  EXPECT_THROW(Campaign(empty).run(), ParamError);
  CampaignSpec bad_override;
  bad_override.entries.push_back(
      {"two-party", {{"no_such_param", "1"}}, {}});
  EXPECT_THROW(Campaign(bad_override).run(), ParamError);
}

TEST(Campaign, GridCapReportsTruncation) {
  CampaignSpec spec;
  CampaignEntry entry;
  entry.protocol = "two-party";
  entry.grid.add_axis_csv("premium_a", "1,2,3,4");
  spec.entries.push_back(std::move(entry));
  spec.max_configs_per_entry = 2;
  const CampaignReport report = Campaign(spec).run();
  EXPECT_EQ(report.configurations(), 2u);
  ASSERT_EQ(report.truncations.size(), 1u);
  EXPECT_NE(report.truncations[0].find("truncated"), std::string::npos);
  EXPECT_NE(report.str().find("truncated"), std::string::npos);
}

TEST(Campaign, JsonCarriesTotalsStampAndConfigs) {
  CampaignSpec spec;
  CampaignEntry entry;
  entry.protocol = "two-party";
  entry.grid.add_axis_csv("premium_a", "1,2");
  spec.entries.push_back(std::move(entry));
  const CampaignReport report = Campaign(spec).run();
  const std::string json =
      campaign_json(report, {"deadbeef", "Release", "test-compiler"});
  EXPECT_NE(json.find("\"benchmark\": \"campaign\""), std::string::npos);
  EXPECT_NE(json.find("\"git_commit\": \"deadbeef\""), std::string::npos);
  EXPECT_NE(json.find("\"build_type\": \"Release\""), std::string::npos);
  EXPECT_NE(json.find("\"configurations\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"violations\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"params\": \"premium_a=1\""), std::string::npos);
  EXPECT_NE(json.find("\"params\": \"premium_a=2\""), std::string::npos);
}

// Campaign violations surface per configuration: a campaign over a
// synthetic always-violating protocol (a private registry, exercising the
// same plumbing) reports them in deterministic order with labels.
class ViolatingAdapter final : public ProtocolAdapter {
 public:
  std::string name() const override { return "violating"; }
  std::size_t party_count() const override { return 2; }
  int action_count(PartyId) const override { return 1; }
  std::unique_ptr<ProtocolAdapter> clone() const override {
    return std::make_unique<ViolatingAdapter>(*this);
  }
  std::vector<PartyOutcome> run(const Schedule& s) const override {
    PartyOutcome victim{"victim", s.plans[0].is_conforming(), {}, {}};
    PartyOutcome thief{"thief", false, {}, {}};
    if (!s.plans[1].is_conforming()) {
      victim.payoff.coin_delta = -1;
      thief.payoff.coin_delta = 1;
    }
    return {victim, thief};
  }
};

TEST(Campaign, ViolationsPropagateIntoReportAndExitStatusContract) {
  ProtocolRegistry reg;
  reg.add({"violating", "synthetic sore loser", ParamSet(),
           [](const ParamSet&) {
             return std::make_unique<ViolatingAdapter>();
           }});
  CampaignSpec spec;
  spec.entries.push_back({"violating", {}, {}});
  const CampaignReport report = Campaign(spec, reg).run();
  EXPECT_FALSE(report.ok());
  // Exactly one violating schedule: victim conforming, thief halting.
  EXPECT_EQ(report.total_violations(), 1u);
  const std::string json = campaign_json(report);
  EXPECT_NE(json.find("violation_details"), std::string::npos);
  EXPECT_NE(json.find("violating["), std::string::npos)
      << "violation labels should carry the schedule: " << json;
}

// ---------------------------------------------------------------------------
// SweepOptions validation (satellite: nonsense no longer accepted silently)
// ---------------------------------------------------------------------------

TEST(SweepOptionsValidation, MaxDeviatorsBelowMinusOneThrows) {
  const auto adapter = ProtocolRegistry::global().make("two-party");
  ScenarioRunner runner(*adapter);
  EXPECT_THROW(runner.sweep({-2, 1, {}}), std::invalid_argument);
  EXPECT_THROW(runner.sweep({-100, 4, {}}), std::invalid_argument);
  // The boundary values stay legal.
  EXPECT_EQ(runner.sweep({-1, 1, {}}).schedules_run, 16u);
  EXPECT_EQ(runner.sweep({0, 1, {}}).schedules_run, 1u);
}

TEST(SweepOptionsValidation, CampaignRejectsMalformedOptionsUpFront) {
  CampaignSpec spec;
  spec.entries.push_back({"two-party", {}, {}});
  spec.sweep.max_deviators = -3;
  EXPECT_THROW(Campaign(spec).run(), std::invalid_argument);
}

TEST(SweepReportLine, OneLineFormIsTheStrHeader) {
  const auto adapter = ProtocolRegistry::global().make("two-party");
  const SweepReport report = ScenarioRunner(*adapter).sweep();
  EXPECT_EQ(report.line(),
            "hedged-two-party: 16 schedules, " +
                std::to_string(report.conforming_audited) +
                " conforming-party audits, 0 violations");
  EXPECT_EQ(report.str(), report.line());  // no violations -> no extra lines
}

}  // namespace
}  // namespace xchain::sim
