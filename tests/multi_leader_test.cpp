// Multi-party swaps on digraphs that force MULTIPLE leaders with
// non-trivial topology (the complete-graph tests cover multi-leader dense
// graphs; these cover sparse shapes where hashkeys and premiums travel
// long, distinct routes).

#include <gtest/gtest.h>

#include "core/multi_party.hpp"
#include "core/premiums.hpp"

namespace xchain::core {
namespace {

using graph::Digraph;
using graph::Vertex;
using sim::DeviationPlan;

/// Two directed triangles sharing vertex 0:
///   0 -> 1 -> 2 -> 0   and   0 -> 3 -> 4 -> 0.
/// {0} is a minimum FVS (both cycles pass through 0).
Digraph two_triangles() {
  Digraph g(5);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.add_arc(2, 0);
  g.add_arc(0, 3);
  g.add_arc(3, 4);
  g.add_arc(4, 0);
  return g;
}

/// A "theta" digraph: two vertex-disjoint directed paths from 0 to 3 and
/// an arc back: 0->1->3, 0->2->3, 3->0. Single cycle family through 3->0;
/// FVS = {0} or {3}.
Digraph theta() {
  Digraph g(4);
  g.add_arc(0, 1);
  g.add_arc(1, 3);
  g.add_arc(0, 2);
  g.add_arc(2, 3);
  g.add_arc(3, 0);
  return g;
}

/// Two disjoint 2-cycles bridged into one SCC:
/// 0<->1, 2<->3, 1->2, 3->0. Needs >= 2 leaders (the 2-cycles are
/// vertex-disjoint).
Digraph bridged_pairs() {
  Digraph g(4);
  g.add_arc(0, 1);
  g.add_arc(1, 0);
  g.add_arc(2, 3);
  g.add_arc(3, 2);
  g.add_arc(1, 2);
  g.add_arc(3, 0);
  return g;
}

MultiPartyConfig config(Digraph g) {
  MultiPartyConfig cfg;
  cfg.g = std::move(g);
  cfg.delta = 1;
  return cfg;
}

TEST(MultiLeader, BridgedPairsNeedsTwoLeaders) {
  const Digraph g = bridged_pairs();
  EXPECT_TRUE(g.strongly_connected());
  EXPECT_EQ(g.minimum_feedback_vertex_set().size(), 2u);
}

TEST(MultiLeader, ConformingRunsComplete) {
  for (auto make : {two_triangles, theta, bridged_pairs}) {
    const Digraph g = make();
    const std::vector<DeviationPlan> plans(g.size(),
                                           DeviationPlan::conforming());
    const auto r = run_multi_party_swap(config(make()), plans);
    EXPECT_TRUE(r.all_redeemed);
    for (std::size_t v = 0; v < g.size(); ++v) {
      EXPECT_EQ(r.payoffs[v].coin_delta, 0) << "party " << v;
    }
  }
}

TEST(MultiLeader, EveryLeaderChoiceWorksOnTheta) {
  // Both {0} and {3} are valid feedback vertex sets for theta: the
  // protocol must complete under either leader assignment.
  for (Vertex leader : {Vertex{0}, Vertex{3}}) {
    MultiPartyConfig cfg = config(theta());
    cfg.leaders = {leader};
    const std::vector<DeviationPlan> plans(4, DeviationPlan::conforming());
    const auto r = run_multi_party_swap(cfg, plans);
    EXPECT_TRUE(r.all_redeemed) << "leader " << leader;
  }
}

TEST(MultiLeader, SingleDeviatorSweepAcrossShapes) {
  for (auto make : {two_triangles, theta, bridged_pairs}) {
    const Digraph g = make();
    for (Vertex d = 0; d < g.size(); ++d) {
      for (int halt = 0; halt <= kMultiPartyHedgedActions; ++halt) {
        std::vector<DeviationPlan> plans(g.size(),
                                         DeviationPlan::conforming());
        plans[d] = DeviationPlan::halt_after(halt);
        const auto r = run_multi_party_swap(config(make()), plans);
        Amount total = 0;
        for (std::size_t v = 0; v < g.size(); ++v) {
          total += r.payoffs[v].coin_delta;
          if (v == d) continue;
          EXPECT_GE(r.payoffs[v].coin_delta, r.assets_refunded[v])
              << "deviator " << d << " halt@" << halt << " party " << v;
        }
        EXPECT_EQ(total, 0);
      }
    }
  }
}

TEST(MultiLeader, PremiumFormulasOnBridgedPairs) {
  const Digraph g = bridged_pairs();
  const auto leaders = g.minimum_feedback_vertex_set();
  // Both formulas must be well-defined and strictly positive per arc.
  const auto escrow = escrow_premiums(g, leaders, 1);
  EXPECT_EQ(escrow.size(), g.arc_count());
  for (const auto& [arc, amount] : escrow) {
    EXPECT_GT(amount, 0) << arc.first << "->" << arc.second;
  }
  for (Vertex l : leaders) {
    EXPECT_GT(leader_redemption_premium(g, l, 1), 0);
  }
}

TEST(MultiLeader, LargerDeltaPreservesOutcomes) {
  // The protocol semantics are Delta-invariant: the same deviation gives
  // the same premium flows at any synchrony bound.
  for (Tick delta : {Tick{1}, Tick{2}, Tick{4}}) {
    MultiPartyConfig cfg = config(two_triangles());
    cfg.delta = delta;
    std::vector<DeviationPlan> plans(5, DeviationPlan::conforming());
    plans[2] = DeviationPlan::halt_after(2);
    const auto r = run_multi_party_swap(cfg, plans);
    EXPECT_FALSE(r.all_redeemed) << "delta " << delta;
    // Party 2 skipping escrow hurts only itself and compensates others.
    EXPECT_LT(r.payoffs[2].coin_delta, 0) << "delta " << delta;
  }
}

}  // namespace
}  // namespace xchain::core
