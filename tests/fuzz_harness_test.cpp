// The fuzz loop end to end: the planted bug is found and minimized within
// a bounded deterministic budget, same-seed runs are byte-identical (the
// CI determinism gate), different seeds explore differently, and the
// registry protocols replay their starter seeds clean.

#include <gtest/gtest.h>

#include "fuzz/harness.hpp"
#include "fuzz/selftest.hpp"
#include "sim/registry.hpp"

namespace xchain::fuzz {
namespace {

FuzzOptions bounded(std::uint64_t seed, std::size_t runs) {
  FuzzOptions o;
  o.seed = seed;
  o.budget_runs = runs;
  return o;
}

TEST(FuzzHarness, FindsAndMinimizesThePlantedBug) {
  const TargetFuzzResult r =
      fuzz_target(selftest_target(), bounded(1, 400));
  EXPECT_EQ(r.runs, 400u);
  EXPECT_GT(r.violating_runs, 0u);
  ASSERT_FALSE(r.reproducers.empty());
  // Whatever found-form the mutation walk hit first, the recorded
  // reproducer is the pinned canonical one.
  EXPECT_EQ(r.reproducers.front().input, selftest_canonical_reproducer());
  EXPECT_FALSE(r.reproducers.front().violation.empty());
  EXPECT_FALSE(r.ok());
}

TEST(FuzzHarness, FindsThePlantedBugAcrossSeeds) {
  // The bug needs two cooperating entries, so no single starter seed hits
  // it — the mutation loop has to compose them. Any reasonable seed gets
  // there well within this budget; regressions in mutation coverage or
  // corpus admission show up here first.
  for (const std::uint64_t seed : {2u, 3u, 5u, 8u, 13u}) {
    const TargetFuzzResult r =
        fuzz_target(selftest_target(), bounded(seed, 1500));
    ASSERT_FALSE(r.reproducers.empty()) << "seed " << seed;
    EXPECT_EQ(r.reproducers.front().input, selftest_canonical_reproducer())
        << "seed " << seed;
  }
}

TEST(FuzzHarness, SameSeedSameReportByteForByte) {
  FuzzReport a, b;
  for (FuzzReport* rep : {&a, &b}) {
    rep->seed = 42;
    rep->budget_runs = 600;
    rep->targets.push_back(
        fuzz_target(selftest_target(), bounded(42, 600)));
    rep->targets.push_back(fuzz_target(FuzzTarget::from_registry("two-party"),
                                       bounded(42, 200)));
  }
  // Fixed stamp: the report body must then be byte-identical — no timing,
  // no iteration-order, no address-derived content anywhere.
  const sim::CampaignStamp stamp{"commit", "Release", "gcc"};
  EXPECT_EQ(fuzz_report_json(a, stamp), fuzz_report_json(b, stamp));
}

TEST(FuzzHarness, DifferentSeedsExploreDifferently) {
  const TargetFuzzResult a =
      fuzz_target(FuzzTarget::from_registry("two-party"), bounded(1, 300));
  const TargetFuzzResult b =
      fuzz_target(FuzzTarget::from_registry("two-party"), bounded(99, 300));
  EXPECT_EQ(a.runs, b.runs);
  // Corpus contents diverge even when summary counts happen to agree.
  EXPECT_NE(a.corpus, b.corpus);
}

TEST(FuzzHarness, ReplayOnlyRunsSeedsAndNothingElse) {
  FuzzOptions o = bounded(1, 10'000);
  o.replay_only = true;
  o.seeds.push_back(FuzzInput::parse("protocol two-party\nplan 1 halt@0\n"));
  const TargetFuzzResult r =
      fuzz_target(FuzzTarget::from_registry("two-party"), o);
  // Starter set (conforming + 2x halt + 2x boundary delay) + 1 seed.
  EXPECT_EQ(r.runs, 6u);
  EXPECT_EQ(r.violating_runs, 0u);
  EXPECT_TRUE(r.ok());
}

TEST(FuzzHarness, RegistryProtocolsReplayTheirStarterSeedsClean) {
  // Every registered protocol's starter set (conforming, per-party halts
  // and boundary delays, every dishonesty variant) must satisfy the
  // hedging audit — the in-model floor of the paper's theorems.
  for (const std::string& name : sim::ProtocolRegistry::global().names()) {
    FuzzOptions o = bounded(1, 10'000);
    o.replay_only = true;
    const TargetFuzzResult r =
        fuzz_target(FuzzTarget::from_registry(name), o);
    EXPECT_GT(r.runs, 0u) << name;
    EXPECT_EQ(r.violating_runs, 0u) << name;
  }
}

TEST(FuzzHarness, SchemaInvalidSeedsAreSkippedNotFatal) {
  FuzzOptions o = bounded(1, 10'000);
  o.replay_only = true;
  o.seeds.push_back(
      FuzzInput::parse("protocol broker\nset purchase_price=9999\n"));
  const TargetFuzzResult r =
      fuzz_target(FuzzTarget::from_registry("broker"), o);
  // purchase_price > sale_price violates the §8 spread precondition: the
  // input is rejected by canonicalization and counted, never executed.
  EXPECT_GT(r.skipped_inputs, 0u);
  EXPECT_EQ(r.violating_runs, 0u);
}

TEST(FuzzReport, JsonShapeAndTotals) {
  FuzzReport rep;
  rep.seed = 7;
  rep.budget_runs = 400;
  rep.targets.push_back(fuzz_target(selftest_target(), bounded(7, 400)));
  const std::string json =
      fuzz_report_json(rep, sim::CampaignStamp{"c", "b", "g"});
  EXPECT_NE(json.find("\"benchmark\": \"fuzz\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"protocol\": \"fuzz-selftest-trap\""),
            std::string::npos);
  EXPECT_NE(json.find("\"reproducers\": ["), std::string::npos);
  // Violation text embeds newlines only in escaped form.
  EXPECT_EQ(json.find("halt@1\n\""), std::string::npos);
  EXPECT_EQ(rep.total_runs(), 400u);
  EXPECT_GT(rep.total_violating_runs(), 0u);
  EXPECT_FALSE(rep.ok());
}

}  // namespace
}  // namespace xchain::fuzz
