// Engine-level behavior of the witness-bridge family (src/core/bridge.*,
// src/contracts/bridge.*): the conforming lifecycle of both variants, the
// hedged door's principal-or-premium guarantee under a witness stall, the
// premium split when the user walks away on a quorum that held up its
// side, and — the regression pin this family exists for — the unhedged
// baseline leaving a conforming user strictly out of pocket on exactly
// the witness-stall schedule the hedge covers.

#include <gtest/gtest.h>

#include <vector>

#include "core/bridge.hpp"
#include "sim/deviation.hpp"

namespace xchain::core {
namespace {

std::vector<sim::DeviationPlan> all_conforming(const BridgeConfig& cfg) {
  return std::vector<sim::DeviationPlan>(
      static_cast<std::size_t>(cfg.party_count()),
      sim::DeviationPlan::conforming());
}

TEST(BridgeLifecycle, ConformingTransferCompletes) {
  const BridgeConfig cfg;  // transfer, n=3, k=2, hedged
  const BridgeResult r = run_bridge(cfg, all_conforming(cfg));

  EXPECT_TRUE(r.committed);
  EXPECT_TRUE(r.transfer_completed);
  EXPECT_FALSE(r.principal_refunded);
  EXPECT_EQ(r.attesters, 3);
  EXPECT_EQ(r.bonds_posted, 3);
  EXPECT_EQ(r.bonds_forfeited, 0);

  // The user funds the 3-witness reward pool (3 * 2 coins), gets the
  // premium back, swaps 100 bridged for 100 wrapped.
  ASSERT_EQ(r.payoffs.size(), 4u);
  EXPECT_EQ(r.payoffs[0].coin_delta, -cfg.reward_pool());
  // Every witness nets its attestation reward; bonds come back whole.
  for (int w = 1; w <= cfg.n_witnesses; ++w) {
    EXPECT_EQ(r.payoffs[static_cast<std::size_t>(w)].coin_delta,
              cfg.witness_reward)
        << "witness " << w;
  }
}

TEST(BridgeLifecycle, ConformingAccountCreateCompletes) {
  BridgeConfig cfg;
  cfg.variant = BridgeVariant::kAccountCreate;
  const BridgeResult r = run_bridge(cfg, all_conforming(cfg));

  EXPECT_TRUE(r.committed);
  EXPECT_TRUE(r.transfer_completed);
  EXPECT_EQ(r.attesters, 3);
  EXPECT_EQ(r.bonds_forfeited, 0);
  // Same net flows as the transfer, but the reward pool rides the door
  // commit and splits at settle among the witnesses whose attestations
  // were reported back.
  ASSERT_EQ(r.payoffs.size(), 4u);
  EXPECT_EQ(r.payoffs[0].coin_delta, -cfg.reward_pool());
  for (int w = 1; w <= cfg.n_witnesses; ++w) {
    EXPECT_EQ(r.payoffs[static_cast<std::size_t>(w)].coin_delta,
              cfg.witness_reward)
        << "witness " << w;
  }
}

TEST(BridgeHedge, WitnessStallRefundsPrincipalAndPaysPremium) {
  // Two of three witnesses bond and stall: the 2-of-3 quorum is starved,
  // the claim times out, and the hedged door must make the conforming
  // user at least premium-whole out of the stalled witnesses' forfeited
  // bonds (the corpus seed bridge_witness_stall.fuzz replays this same
  // schedule through the fuzz harness).
  const BridgeConfig cfg;
  std::vector<sim::DeviationPlan> plans = all_conforming(cfg);
  plans[2] = sim::DeviationPlan::halt_after(1);  // bond, never attest
  plans[3] = sim::DeviationPlan::halt_after(1);
  const BridgeResult r = run_bridge(cfg, plans);

  EXPECT_TRUE(r.committed);
  EXPECT_FALSE(r.transfer_completed);
  EXPECT_TRUE(r.principal_refunded);
  EXPECT_EQ(r.attesters, 1);
  EXPECT_EQ(r.bonds_posted, 3);
  EXPECT_EQ(r.bonds_forfeited, 2);

  // User: -6 pool, +4 unspent pool refund, premium round-trips, +8 from
  // two forfeited 4-coin bonds = +6 — comfortably above the premium
  // floor the audit demands (>= premium_unit).
  ASSERT_EQ(r.payoffs.size(), 4u);
  EXPECT_EQ(r.payoffs[0].coin_delta, 6);
  EXPECT_GE(r.payoffs[0].coin_delta, cfg.premium_unit);
  // The conforming witness attested (eager +2) and reported its own
  // vote, so its bond came back: net exactly the attestation reward.
  EXPECT_EQ(r.payoffs[1].coin_delta, cfg.witness_reward);
  // The stalled witnesses forfeit their bonds.
  EXPECT_EQ(r.payoffs[2].coin_delta, -cfg.bond_amount());
  EXPECT_EQ(r.payoffs[3].coin_delta, -cfg.bond_amount());
}

TEST(BridgeHedge, UnhedgedBaselineBreachesUnderWitnessStall) {
  // The same stall against premium_unit=0: no premiums, no bonds. One
  // witness collects its eager attestation reward, the quorum never
  // completes, and the conforming user ends strictly out of pocket —
  // the sore-loser gap the paper's construction closes. This pin is the
  // reason the registry schema keeps premium_unit >= 1: the hedged
  // protocol must sweep clean, the baseline must not.
  BridgeConfig cfg;
  cfg.premium_unit = 0;
  ASSERT_FALSE(cfg.hedged());
  std::vector<sim::DeviationPlan> plans = all_conforming(cfg);
  plans[2] = sim::DeviationPlan::halt_after(0);  // never attest
  plans[3] = sim::DeviationPlan::halt_after(0);
  const BridgeResult r = run_bridge(cfg, plans);

  EXPECT_TRUE(r.committed);
  EXPECT_FALSE(r.transfer_completed);
  EXPECT_TRUE(r.principal_refunded);
  EXPECT_EQ(r.bonds_posted, 0);
  // -6 pool + 4 refund - 0 recovered: the conforming user paid one eager
  // attestation reward for a transfer that never happened.
  ASSERT_EQ(r.payoffs.size(), 4u);
  EXPECT_EQ(r.payoffs[0].coin_delta, -cfg.witness_reward);
  EXPECT_LT(r.payoffs[0].coin_delta, 0);
}

TEST(BridgeHedge, UserWalkawaySplitsPremiumAmongBondedWitnesses) {
  // The mirror-image sore loser: every witness bonds, the user never
  // commits. The witnesses held up their side, so the premium is theirs
  // (integer split), and every bond refunds.
  BridgeConfig cfg;
  cfg.premium_unit = 9;  // splits 3/3/3 across the n=3 witnesses
  std::vector<sim::DeviationPlan> plans = all_conforming(cfg);
  plans[0] = sim::DeviationPlan::halt_after(2);  // create, premium, stop
  const BridgeResult r = run_bridge(cfg, plans);

  EXPECT_FALSE(r.committed);
  EXPECT_FALSE(r.transfer_completed);
  EXPECT_EQ(r.attesters, 0);
  EXPECT_EQ(r.bonds_posted, 3);
  EXPECT_EQ(r.bonds_forfeited, 0);
  ASSERT_EQ(r.payoffs.size(), 4u);
  // User: -6 pool, +6 pool refund (claim never resolves), -9 premium.
  EXPECT_EQ(r.payoffs[0].coin_delta, -9);
  for (int w = 1; w <= cfg.n_witnesses; ++w) {
    EXPECT_EQ(r.payoffs[static_cast<std::size_t>(w)].coin_delta, 3)
        << "witness " << w;
  }
}

TEST(BridgeConfigShape, BondCoversEagerRewardsPlusPremium) {
  // The sizing lemma behind the hedge: on a failed transfer with j < k
  // attesters, at least (k - j) bonds forfeit, and
  // (k - j) * bond >= j * reward + premium for every 0 <= j < k.
  for (int k = 1; k <= 5; ++k) {
    BridgeConfig cfg;
    cfg.n_witnesses = 5;
    cfg.quorum = k;
    for (int j = 0; j < k; ++j) {
      EXPECT_GE((k - j) * cfg.bond_amount(),
                j * cfg.witness_reward + cfg.premium_unit)
          << "quorum " << k << ", attesters " << j;
    }
  }
}

}  // namespace
}  // namespace xchain::core
