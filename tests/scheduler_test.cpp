#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chain/blockchain.hpp"
#include "sim/party.hpp"
#include "sim/scheduler.hpp"

namespace xchain::sim {
namespace {

using chain::MultiChain;
using chain::TxContext;

/// Writes one marker transaction on `src` at tick 0, then relays it to
/// `dst` one tick after observing it land — the minimal cross-chain data
/// flow parties perform in every protocol.
class RelayParty : public Party {
 public:
  RelayParty(PartyId id, ChainId src, ChainId dst)
      : Party(id, "relay-" + std::to_string(id)), src_(src), dst_(dst) {}

  void step(MultiChain& chains, Tick now) override {
    if (now == 0) {
      chains.at(src_).submit({id(), "mark", [this](TxContext& ctx) {
                                ctx.ledger().mint(address(), "mark", 1);
                              }});
    }
    // Observe the source chain; relay once the marker is visible.
    if (!relayed_ &&
        chains.at(src_).ledger().balance(address(), "mark") > 0) {
      relay_tick = now;
      relayed_ = true;
      chains.at(dst_).submit({id(), "relay", [this](TxContext& ctx) {
                                ctx.ledger().mint(address(), "relayed", 1);
                              }});
    }
    if (dst_seen_tick < 0 &&
        chains.at(dst_).ledger().balance(address(), "relayed") > 0) {
      dst_seen_tick = now;
    }
  }

  Tick relay_tick = -1;     ///< tick the marker became observable on src
  Tick dst_seen_tick = -1;  ///< tick the relay became observable on dst

 private:
  ChainId src_, dst_;
  bool relayed_ = false;
};

// Delta >= 1 propagation: state committed in block t is invisible during
// tick t and observable from tick t+1 — on the same chain and, via a party
// relay, on another chain one further tick later.
TEST(SchedulerPropagation, CrossChainDataTakesOneTickPerHop) {
  MultiChain chains;
  chains.add_chain("src");
  chains.add_chain("dst");
  RelayParty p(0, 0, 1);
  Scheduler sched(chains);
  sched.add_party(p);
  sched.run_until(5);

  // Submitted at tick 0 -> lands in block 0 -> observed at tick 1.
  EXPECT_EQ(p.relay_tick, 1);
  // Relayed at tick 1 -> lands in dst block 1 -> observed at tick 2.
  EXPECT_EQ(p.dst_seen_tick, 2);
}

TEST(SchedulerPropagation, NothingIsObservableWithinTheSubmittingTick) {
  MultiChain chains;
  auto& bc = chains.add_chain("only");

  class SameTickProbe : public Party {
   public:
    using Party::Party;
    void step(MultiChain& chains, Tick now) override {
      if (now == 0) {
        chains.at(0).submit({id(), "mint", [this](TxContext& ctx) {
                               ctx.ledger().mint(address(), "x", 7);
                             }});
        // The ledger must not reflect the queued transaction yet.
        balance_during_submit = chains.at(0).ledger().balance(address(), "x");
      }
    }
    Amount balance_during_submit = -1;
  };

  SameTickProbe p(0, "probe");
  Scheduler sched(chains);
  sched.add_party(p);
  sched.run_until(1);
  EXPECT_EQ(p.balance_during_submit, 0);
  EXPECT_EQ(bc.ledger().balance(p.address(), "x"), 7);
}

// Same-tick submission ordering irrelevance: submissions from different
// parties in one tick land in the same block, so the parties' step order
// must not change any observable outcome. Two parties race to transfer the
// same escrowed funds; we run both registration orders and require
// identical final state.
class RacingParty : public Party {
 public:
  RacingParty(PartyId id, std::string name) : Party(id, std::move(name)) {}

  void step(MultiChain& chains, Tick now) override {
    if (now != 1) return;  // tick 0 funds; tick 1 both parties race
    chains.at(0).submit({id(), name() + ": grab", [this](TxContext& ctx) {
                           // First transaction in the block wins the pot;
                           // the second sees an empty pot and no-ops.
                           const Amount pot = ctx.ledger().balance(
                               chain::Address::contract(99), "pot");
                           if (pot > 0) {
                             ctx.ledger().transfer(
                                 chain::Address::contract(99), address(),
                                 "pot", pot);
                           }
                         }});
  }
};

TEST(SchedulerOrdering, RegistrationOrderDoesNotChangeBlockContents) {
  // Both orders: the same single block 1 contains both transactions, and
  // exactly one grab succeeds. Which party wins is decided by submission
  // order *within the block* — a chain-level rule — but the block contents
  // and total conservation are identical, and no submission is ever lost.
  for (bool reversed : {false, true}) {
    MultiChain chains;
    auto& bc = chains.add_chain("apricot");
    bc.ledger_for_setup().mint(chain::Address::contract(99), "pot", 10);

    RacingParty a(0, "a"), b(1, "b");
    Scheduler sched(chains);
    if (reversed) {
      sched.add_party(b);
      sched.add_party(a);
    } else {
      sched.add_party(a);
      sched.add_party(b);
    }
    sched.run_until(3);

    const Amount a_won = bc.ledger().balance(a.address(), "pot");
    const Amount b_won = bc.ledger().balance(b.address(), "pot");
    EXPECT_EQ(a_won + b_won, 10) << "pot conserved, reversed=" << reversed;
    EXPECT_EQ(bc.ledger().balance(chain::Address::contract(99), "pot"), 0);
    EXPECT_EQ(bc.applied_tx_count(), 2u) << "no submission dropped";
  }
}

// The protocol engines never rely on intra-block priority: a conforming
// party acting at its deadline tick always has its transaction included in
// that tick's block, whatever other parties submit in the same tick. This
// pins the "order within a tick never matters" contract the engines and
// the scenario sweep assume.
TEST(SchedulerOrdering, AllSameTickSubmissionsShareOneBlock) {
  MultiChain chains;
  auto& bc = chains.add_chain("only");

  class OneShot : public Party {
   public:
    using Party::Party;
    void step(MultiChain& chains, Tick now) override {
      if (now == 0) {
        chains.at(0).submit({id(), "mint", [this](TxContext& ctx) {
                               ctx.ledger().mint(address(), "t", 1);
                             }});
      }
    }
  };

  OneShot p0(0, "p0"), p1(1, "p1"), p2(2, "p2");
  Scheduler sched(chains);
  sched.add_party(p2);  // deliberately scrambled registration order
  sched.add_party(p0);
  sched.add_party(p1);
  sched.run_until(1);

  EXPECT_EQ(bc.height(), 0);  // a single block was produced...
  EXPECT_EQ(bc.applied_tx_count(), 3u);  // ...containing all three
  for (const auto* p : {&p0, &p1, &p2}) {
    EXPECT_EQ(bc.ledger().balance(p->address(), "t"), 1);
  }
}

TEST(SchedulerPropagation, DeltaTimeoutsFireExactlyAtExpiry) {
  // A contract with a deadline at tick D refunds in block D's timeout
  // sweep, not a tick earlier or later — the engines' timelock arithmetic
  // (multiples of Delta) depends on this.
  MultiChain chains;
  auto& bc = chains.add_chain("only");

  class DeadlineContract : public chain::Contract {
   public:
    explicit DeadlineContract(Tick deadline) : deadline_(deadline) {}
    void on_block(TxContext& ctx) override {
      if (fired_at < 0 && ctx.now() >= deadline_) {
        fired_at = ctx.now();
        ctx.emit(id(), "expired");
      }
    }
    Tick fired_at = -1;

   private:
    Tick deadline_;
  };

  auto& contract = bc.deploy<DeadlineContract>(3);
  Scheduler sched(chains);
  sched.run_until(6);
  EXPECT_EQ(contract.fired_at, 3);
}

}  // namespace
}  // namespace xchain::sim
