#include <gtest/gtest.h>

#include "core/two_party.hpp"

namespace xchain::core {
namespace {

using sim::DeviationPlan;

// A=100 apricot vs B=50 banana, p_a=2, p_b=1, Delta=2 ticks.
TwoPartyConfig config() {
  TwoPartyConfig cfg;
  cfg.alice_tokens = 100;
  cfg.bob_tokens = 50;
  cfg.premium_a = 2;
  cfg.premium_b = 1;
  cfg.delta = 2;
  return cfg;
}

// ---------------------------------------------------------------------------
// Base protocol (§5.1)
// ---------------------------------------------------------------------------

TEST(BaseTwoParty, BothConformSwaps) {
  const auto r = run_base_two_party(config(), DeviationPlan::conforming(),
                                    DeviationPlan::conforming());
  EXPECT_TRUE(r.swapped);
  EXPECT_EQ(r.alice.by_symbol.at("apricot"), -100);
  EXPECT_EQ(r.alice.by_symbol.at("banana"), 50);
  EXPECT_EQ(r.bob.by_symbol.at("apricot"), 100);
  EXPECT_EQ(r.bob.by_symbol.at("banana"), -50);
  EXPECT_EQ(r.alice_lockup, 0);
  EXPECT_EQ(r.bob_lockup, 0);
}

TEST(BaseTwoParty, BobAbandonsLocksAliceUncompensated) {
  // §5.1: "If Bob walks away at Step 2, Alice's asset is locked up for
  // 3*Delta... Bob pays no penalty."
  const auto r = run_base_two_party(config(), DeviationPlan::conforming(),
                                    DeviationPlan::halt_after(0));
  EXPECT_FALSE(r.swapped);
  EXPECT_GT(r.alice_lockup, 0);       // locked...
  EXPECT_EQ(r.alice.coin_delta, 0);   // ...and uncompensated: the flaw
  EXPECT_EQ(r.alice.by_symbol.count("apricot"), 0u);  // refunded in full
}

TEST(BaseTwoParty, AliceAbandonsLocksBobUncompensated) {
  // §5.1: "if Alice walks away at Step 3, Bob's asset is locked up for
  // Delta" with no compensation.
  const auto r = run_base_two_party(config(), DeviationPlan::halt_after(1),
                                    DeviationPlan::conforming());
  EXPECT_FALSE(r.swapped);
  EXPECT_GT(r.bob_lockup, 0);
  EXPECT_EQ(r.bob.coin_delta, 0);
  // Alice also locked her own asset; both refunded.
  EXPECT_GT(r.alice_lockup, 0);
}

TEST(BaseTwoParty, AliceNeverStartsNothingMoves) {
  const auto r = run_base_two_party(config(), DeviationPlan::halt_after(0),
                                    DeviationPlan::conforming());
  EXPECT_FALSE(r.swapped);
  EXPECT_TRUE(r.alice.by_symbol.empty());
  EXPECT_TRUE(r.bob.by_symbol.empty());
}

TEST(BaseTwoParty, BobStealsNothingWithoutSecret) {
  // Safety: whatever Bob does, he cannot take Alice's tokens without s.
  for (int k = 0; k <= 2; ++k) {
    const auto r = run_base_two_party(config(), DeviationPlan::halt_after(1),
                                      DeviationPlan::halt_after(k));
    const auto it = r.bob.by_symbol.find("apricot");
    EXPECT_TRUE(it == r.bob.by_symbol.end() || it->second <= 0);
  }
}

// ---------------------------------------------------------------------------
// Hedged protocol (§5.2, Figure 1)
// ---------------------------------------------------------------------------

TEST(HedgedTwoParty, BothConformSwapsAndRefundsPremiums) {
  const auto r = run_hedged_two_party(config(), DeviationPlan::conforming(),
                                      DeviationPlan::conforming());
  EXPECT_TRUE(r.swapped);
  EXPECT_EQ(r.alice.by_symbol.at("apricot"), -100);
  EXPECT_EQ(r.alice.by_symbol.at("banana"), 50);
  EXPECT_EQ(r.alice.coin_delta, 0);  // premiums refunded
  EXPECT_EQ(r.bob.coin_delta, 0);
  EXPECT_EQ(r.alice_lockup, 0);
  EXPECT_EQ(r.bob_lockup, 0);
}

TEST(HedgedTwoParty, BobRenegesAfterAliceEscrowsPaysPb) {
  // §5.2: "If Bob is first to deviate after Alice escrows her principal,
  // he will pay Alice p_b."
  const auto r = run_hedged_two_party(config(), DeviationPlan::conforming(),
                                      DeviationPlan::halt_after(1));
  EXPECT_FALSE(r.swapped);
  EXPECT_GT(r.alice_lockup, 0);
  EXPECT_EQ(r.alice.coin_delta, 1);   // +p_b
  EXPECT_EQ(r.bob.coin_delta, -1);    // -p_b
  EXPECT_EQ(r.alice.by_symbol.count("apricot"), 0u);  // principal refunded
}

TEST(HedgedTwoParty, AliceRenegesAfterBobEscrowsPaysNetPa) {
  // §5.2: "If Alice is the first to omit a step after Bob escrows his
  // principal, she will pay Bob p_a + p_b, and Bob will pay Alice p_b" —
  // net: Alice -p_a, Bob +p_a.
  const auto r = run_hedged_two_party(config(), DeviationPlan::halt_after(2),
                                      DeviationPlan::conforming());
  EXPECT_FALSE(r.swapped);
  EXPECT_GT(r.bob_lockup, 0);
  EXPECT_EQ(r.alice.coin_delta, -2);  // -(p_a+p_b) + p_b = -p_a
  EXPECT_EQ(r.bob.coin_delta, 2);     // +(p_a+p_b) - p_b = +p_a
}

TEST(HedgedTwoParty, PremiumPhaseAbortCostsNothing) {
  // Alice deposits her premium, Bob never responds: premiums are refunded,
  // no principals move. (Residual risk is lock-up of the premium only.)
  const auto r = run_hedged_two_party(config(), DeviationPlan::conforming(),
                                      DeviationPlan::halt_after(0));
  EXPECT_FALSE(r.swapped);
  EXPECT_EQ(r.alice.coin_delta, 0);
  EXPECT_EQ(r.bob.coin_delta, 0);
  EXPECT_EQ(r.alice_lockup, 0);  // principal never escrowed
  EXPECT_EQ(r.alice.by_symbol.count("apricot"), 0u);
}

TEST(HedgedTwoParty, AliceSkipsEscrowOnlyPremiumsMove) {
  const auto r = run_hedged_two_party(config(), DeviationPlan::halt_after(1),
                                      DeviationPlan::conforming());
  EXPECT_FALSE(r.swapped);
  // Truncated run: both premiums eventually refunded, nobody escrowed.
  EXPECT_EQ(r.alice.coin_delta, 0);
  EXPECT_EQ(r.bob.coin_delta, 0);
  EXPECT_EQ(r.alice_lockup, 0);
  EXPECT_EQ(r.bob_lockup, 0);
}

TEST(HedgedTwoParty, BobSkipsFinalRedeemHurtsOnlyHimself) {
  const auto r = run_hedged_two_party(config(), DeviationPlan::conforming(),
                                      DeviationPlan::halt_after(2));
  EXPECT_FALSE(r.swapped);
  // Alice redeemed Bob's banana and got her premium back, plus Bob's p_b
  // as compensation for her locked apricot principal (never redeemed).
  EXPECT_EQ(r.alice.by_symbol.at("banana"), 50);
  EXPECT_EQ(r.alice.coin_delta, 1);
  EXPECT_EQ(r.bob.by_symbol.at("banana"), -50);
  EXPECT_EQ(r.bob.coin_delta, -1);
}

// ---------------------------------------------------------------------------
// Property sweep: the hedged guarantee over every deviation pair
// ---------------------------------------------------------------------------

struct PlanCase {
  int alice;  // -1 = conforming
  int bob;
};

class HedgedSweep : public ::testing::TestWithParam<PlanCase> {};

DeviationPlan plan_of(int k) {
  return k < 0 ? DeviationPlan::conforming() : DeviationPlan::halt_after(k);
}

TEST_P(HedgedSweep, CompliantPartiesNeverLoseCoins) {
  const auto [ka, kb] = GetParam();
  const auto r = run_hedged_two_party(config(), plan_of(ka), plan_of(kb));
  if (ka < 0) {
    EXPECT_GE(r.alice.coin_delta, 0) << "alice compliant, bob halt@" << kb;
    // Hedged property (Definition 1): a compliant party whose principal
    // was locked up and refunded receives compensation.
    if (r.alice_lockup > 0) {
      EXPECT_GT(r.alice.coin_delta, 0);
    }
  }
  if (kb < 0) {
    EXPECT_GE(r.bob.coin_delta, 0) << "bob compliant, alice halt@" << ka;
    if (r.bob_lockup > 0) {
      EXPECT_GT(r.bob.coin_delta, 0);
    }
  }
  // Conservation: premium flows are zero-sum.
  EXPECT_EQ(r.alice.coin_delta + r.bob.coin_delta, 0);
}

TEST_P(HedgedSweep, SafetyNoTokenTheft) {
  const auto [ka, kb] = GetParam();
  const auto r = run_hedged_two_party(config(), plan_of(ka), plan_of(kb));
  // A compliant Alice never loses her apricot tokens without receiving the
  // banana tokens.
  if (ka < 0) {
    const bool lost_apricot = r.alice.by_symbol.count("apricot") &&
                              r.alice.by_symbol.at("apricot") < 0;
    const bool got_banana = r.alice.by_symbol.count("banana") &&
                            r.alice.by_symbol.at("banana") > 0;
    if (lost_apricot) {
      EXPECT_TRUE(got_banana);
    }
  }
  if (kb < 0) {
    const bool lost_banana = r.bob.by_symbol.count("banana") &&
                             r.bob.by_symbol.at("banana") < 0;
    const bool got_apricot = r.bob.by_symbol.count("apricot") &&
                             r.bob.by_symbol.at("apricot") > 0;
    if (lost_banana) {
      EXPECT_TRUE(got_apricot);
    }
  }
}

std::vector<PlanCase> all_plan_pairs() {
  std::vector<PlanCase> cases;
  for (int a = -1; a <= kHedgedTwoPartyActions; ++a) {
    for (int b = -1; b <= kHedgedTwoPartyActions; ++b) {
      cases.push_back({a, b});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPlans, HedgedSweep,
                         ::testing::ValuesIn(all_plan_pairs()),
                         [](const auto& info) {
                           auto name = [](int k) {
                             return k < 0 ? std::string("conform")
                                          : "halt" + std::to_string(k);
                           };
                           return "alice_" + name(info.param.alice) +
                                  "_bob_" + name(info.param.bob);
                         });

// Delta-robustness: the guarantees hold for any synchrony bound.
class DeltaSweep : public ::testing::TestWithParam<Tick> {};

TEST_P(DeltaSweep, ConformingSwapCompletesAtAnyDelta) {
  TwoPartyConfig cfg = config();
  cfg.delta = GetParam();
  const auto r = run_hedged_two_party(cfg, DeviationPlan::conforming(),
                                      DeviationPlan::conforming());
  EXPECT_TRUE(r.swapped);
  EXPECT_EQ(r.alice.coin_delta, 0);
  EXPECT_EQ(r.bob.coin_delta, 0);
}

TEST_P(DeltaSweep, BobRenegeCompensationScalesNotWithDelta) {
  TwoPartyConfig cfg = config();
  cfg.delta = GetParam();
  const auto r = run_hedged_two_party(cfg, DeviationPlan::conforming(),
                                      DeviationPlan::halt_after(1));
  EXPECT_EQ(r.alice.coin_delta, 1);
  // Lock-up duration grows with Delta (that is exactly the risk premiums
  // compensate for).
  EXPECT_GE(r.alice_lockup, 3 * cfg.delta);
}

INSTANTIATE_TEST_SUITE_P(Deltas, DeltaSweep,
                         ::testing::Values<Tick>(1, 2, 3, 5, 8));

}  // namespace
}  // namespace xchain::core
