#include <gtest/gtest.h>

#include "chain/blockchain.hpp"
#include "contracts/hedged_swap.hpp"
#include "crypto/secret.hpp"

namespace xchain::contracts {
namespace {

using chain::Address;
using chain::MultiChain;
using chain::TxContext;

constexpr PartyId kAlice = 0;  // principal owner in this fixture
constexpr PartyId kBob = 1;    // premium payer / redeemer

// Mirrors the apricot-chain contract of §5.2 with Delta = 2:
// premium deadline 4 (=2*Delta), escrow deadline 6, redemption deadline 12.
class HedgedFixture : public ::testing::Test {
 protected:
  HedgedFixture()
      : bc_(chains_.add_chain("apricot")),
        secret_(crypto::Secret::from_label("s")),
        c_(bc_.deploy<HedgedSwapContract>(HedgedSwapContract::Params{
            kAlice, kBob, "apricot", 100, /*premium=*/5, secret_.hashlock(),
            /*premium_deadline=*/4, /*escrow_deadline=*/6,
            /*redemption_deadline=*/12})) {
    bc_.ledger_for_setup().mint(Address::party(kAlice), "apricot", 100);
    bc_.ledger_for_setup().mint(Address::party(kBob), bc_.native(), 5);
  }

  void submit_premium(Tick t) {
    bc_.submit(
        {kBob, "premium", [&](TxContext& c) { c_.deposit_premium(c); }});
    chains_.produce_all(t);
  }
  void submit_escrow(Tick t) {
    bc_.submit(
        {kAlice, "escrow", [&](TxContext& c) { c_.escrow_principal(c); }});
    chains_.produce_all(t);
  }
  void submit_redeem(Tick t) {
    bc_.submit({kBob, "redeem", [&](TxContext& c) {
                  c_.redeem(c, secret_.value());
                }});
    chains_.produce_all(t);
  }
  void idle_until(Tick t) {
    for (Tick now = bc_.height() + 1; now <= t; ++now) {
      chains_.produce_all(now);
    }
  }

  Amount coins(PartyId p) {
    return bc_.ledger().balance(Address::party(p), bc_.native());
  }
  Amount tokens(PartyId p) {
    return bc_.ledger().balance(Address::party(p), "apricot");
  }

  MultiChain chains_;
  chain::Blockchain& bc_;
  crypto::Secret secret_;
  HedgedSwapContract& c_;
};

TEST_F(HedgedFixture, HappyPathRefundsPremium) {
  submit_premium(0);
  submit_escrow(1);
  submit_redeem(2);
  EXPECT_TRUE(c_.redeemed());
  EXPECT_TRUE(c_.premium_refunded());
  EXPECT_FALSE(c_.premium_awarded());
  EXPECT_EQ(tokens(kBob), 100);  // principal to redeemer
  EXPECT_EQ(coins(kBob), 5);     // premium back
}

TEST_F(HedgedFixture, PrincipalNeverEscrowedRefundsPremiumAtDeadline) {
  submit_premium(0);
  idle_until(7);  // escrow deadline 6; sweep at 7
  EXPECT_TRUE(c_.premium_refunded());
  EXPECT_EQ(coins(kBob), 5);
  EXPECT_EQ(c_.premium_resolved_at(), 7);
}

TEST_F(HedgedFixture, UnredeemedPrincipalAwardsPremiumToOwner) {
  submit_premium(0);
  submit_escrow(1);
  idle_until(13);  // redemption deadline 12; sweep at 13
  EXPECT_TRUE(c_.principal_refunded());
  EXPECT_TRUE(c_.premium_awarded());
  EXPECT_EQ(tokens(kAlice), 100);  // principal back
  EXPECT_EQ(coins(kAlice), 5);     // Bob's premium compensates Alice
  EXPECT_EQ(coins(kBob), 0);
}

TEST_F(HedgedFixture, EscrowWithoutPremiumStillRefundsPrincipal) {
  // Alice escrows even though Bob never deposited (a deviating/imprudent
  // Alice); at the redemption deadline she gets the principal back and no
  // premium.
  submit_escrow(1);
  idle_until(13);
  EXPECT_TRUE(c_.principal_refunded());
  EXPECT_FALSE(c_.premium_awarded());
  EXPECT_EQ(tokens(kAlice), 100);
  EXPECT_EQ(coins(kAlice), 0);
}

TEST_F(HedgedFixture, LatePremiumRejected) {
  idle_until(4);
  submit_premium(5);  // premium deadline 4
  EXPECT_FALSE(c_.premium_deposited());
  EXPECT_EQ(coins(kBob), 5);
}

TEST_F(HedgedFixture, LateEscrowRejected) {
  submit_premium(0);
  idle_until(6);
  submit_escrow(7);  // escrow deadline 6
  EXPECT_FALSE(c_.escrowed());
  // Premium was already refunded by the sweep at tick 7.
  EXPECT_TRUE(c_.premium_refunded());
}

TEST_F(HedgedFixture, RedeemAtBoundaryTimely) {
  submit_premium(0);
  submit_escrow(1);
  idle_until(11);
  submit_redeem(12);  // inclusive deadline
  EXPECT_TRUE(c_.redeemed());
  EXPECT_TRUE(c_.premium_refunded());
}

TEST_F(HedgedFixture, LateRedeemLosesToSweep) {
  submit_premium(0);
  submit_escrow(1);
  idle_until(12);
  submit_redeem(13);
  EXPECT_FALSE(c_.redeemed());
  EXPECT_TRUE(c_.principal_refunded());
  EXPECT_TRUE(c_.premium_awarded());
}

TEST_F(HedgedFixture, WrongSenderPremiumIgnored) {
  bc_.submit(
      {kAlice, "premium", [&](TxContext& c) { c_.deposit_premium(c); }});
  chains_.produce_all(0);
  EXPECT_FALSE(c_.premium_deposited());
}

TEST_F(HedgedFixture, WrongSenderEscrowIgnored) {
  bc_.submit(
      {kBob, "escrow", [&](TxContext& c) { c_.escrow_principal(c); }});
  chains_.produce_all(0);
  EXPECT_FALSE(c_.escrowed());
}

TEST_F(HedgedFixture, RedeemWithoutEscrowIsNoop) {
  submit_premium(0);
  submit_redeem(1);
  EXPECT_FALSE(c_.redeemed());
}

TEST_F(HedgedFixture, ConservationAcrossOutcomes) {
  submit_premium(0);
  submit_escrow(1);
  idle_until(13);
  // Total coins and tokens in the system are conserved.
  EXPECT_EQ(coins(kAlice) + coins(kBob) +
                bc_.ledger().balance(c_.address(), bc_.native()),
            5);
  EXPECT_EQ(tokens(kAlice) + tokens(kBob) +
                bc_.ledger().balance(c_.address(), "apricot"),
            100);
}

}  // namespace
}  // namespace xchain::contracts
