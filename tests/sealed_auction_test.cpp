#include <gtest/gtest.h>

#include "contracts/sealed_auction.hpp"
#include "core/auction.hpp"
#include "crypto/secret.hpp"

namespace xchain::core {
namespace {

AuctionConfig config() {
  AuctionConfig cfg;
  cfg.ticket_count = 10;
  cfg.bids = {100, 80};
  cfg.premium_unit = 2;
  cfg.delta = 2;
  cfg.collateral = 150;
  return cfg;
}

std::vector<BidderStrategy> conform(std::size_t n) {
  return std::vector<BidderStrategy>(n, BidderStrategy::kConform);
}

TEST(SealedAuction, CommitmentDigestBindsBidAndNonce) {
  using contracts::SealedCoinAuctionContract;
  const auto nonce = crypto::Secret::from_label("n").value();
  const auto c1 = SealedCoinAuctionContract::commitment_of(100, nonce);
  EXPECT_EQ(c1, SealedCoinAuctionContract::commitment_of(100, nonce));
  EXPECT_NE(c1, SealedCoinAuctionContract::commitment_of(101, nonce));
  EXPECT_NE(c1, SealedCoinAuctionContract::commitment_of(
                    100, crypto::Secret::from_label("m").value()));
}

TEST(SealedAuction, HonestRunMatchesOpenAuction) {
  const auto sealed = run_sealed_auction(
      config(), AuctioneerStrategy::kHonest, conform(2));
  const auto open =
      run_auction(config(), AuctioneerStrategy::kHonest, conform(2));
  EXPECT_TRUE(sealed.completed);
  EXPECT_EQ(sealed.tickets_to, open.tickets_to);
  EXPECT_EQ(sealed.auctioneer.coin_delta, open.auctioneer.coin_delta);
  EXPECT_EQ(sealed.bidders[0].coin_delta, open.bidders[0].coin_delta);
  EXPECT_EQ(sealed.bidders[1].coin_delta, open.bidders[1].coin_delta);
}

TEST(SealedAuction, ExcessCollateralRefundedAtReveal) {
  const auto r = run_sealed_auction(config(), AuctioneerStrategy::kHonest,
                                    conform(2));
  // Bob paid exactly his 100 bid, not the 150 collateral.
  EXPECT_EQ(r.bidders[0].coin_delta, -100);
  EXPECT_EQ(r.bidders[1].coin_delta, 0);
}

TEST(SealedAuction, CommitWithoutRevealDropsOutSafely) {
  // Carol commits but never opens: she is treated as a non-bidder and her
  // collateral comes back in full; the auction completes with Bob alone.
  const auto r = run_sealed_auction(
      config(), AuctioneerStrategy::kHonest,
      {BidderStrategy::kConform, BidderStrategy::kCommitNoReveal});
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.tickets_to, 1u);
  EXPECT_EQ(r.bidders[1].coin_delta, 0);  // collateral refunded
}

TEST(SealedAuction, AbandonStillCompensatesRevealedBidders) {
  const auto r = run_sealed_auction(config(), AuctioneerStrategy::kAbandon,
                                    conform(2));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.auctioneer.coin_delta, -4);
  EXPECT_EQ(r.bidders[0].coin_delta, 2);
  EXPECT_EQ(r.bidders[1].coin_delta, 2);
}

TEST(SealedAuction, CheatingDeclarationStillCaught) {
  const auto r = run_sealed_auction(
      config(), AuctioneerStrategy::kDeclareLoser, conform(2));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.bidders[0].coin_delta, 2);
  EXPECT_EQ(r.bidders[1].coin_delta, 2);
  EXPECT_EQ(r.auctioneer.coin_delta, -4);
}

TEST(SealedAuction, OneSidedDeclarationFixedByChallenge) {
  const auto r = run_sealed_auction(config(), AuctioneerStrategy::kCoinOnly,
                                    conform(2));
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.tickets_to, 1u);
}

// Lemma 8 carries over to the sealed variant.
class SealedSweep : public ::testing::TestWithParam<AuctioneerStrategy> {};

TEST_P(SealedSweep, CompliantBidsCannotBeStolen) {
  const auto r = run_sealed_auction(config(), GetParam(), conform(2));
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& d = r.bidders[i];
    if (d.coin_delta < 0) {
      ASSERT_TRUE(d.by_symbol.count("ticket"))
          << "bidder " << i << " paid without tickets";
      EXPECT_GT(d.by_symbol.at("ticket"), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, SealedSweep,
    ::testing::Values(AuctioneerStrategy::kHonest,
                      AuctioneerStrategy::kNoSetup,
                      AuctioneerStrategy::kAbandon,
                      AuctioneerStrategy::kDeclareLoser,
                      AuctioneerStrategy::kCoinOnly,
                      AuctioneerStrategy::kTicketOnly,
                      AuctioneerStrategy::kSplit));

TEST(SealedAuction, WorksAtDeltaOne) {
  AuctionConfig cfg = config();
  cfg.delta = 1;
  const auto r = run_sealed_auction(cfg, AuctioneerStrategy::kHonest,
                                    conform(2));
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.tickets_to, 1u);
}

}  // namespace
}  // namespace xchain::core
