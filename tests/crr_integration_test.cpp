// End-to-end premium sizing: the paper (§4) says premiums "can be
// estimated using formula such as the Cox-Ross-Rubinstein option pricing
// model". These tests derive the two-party premiums from CRR and run the
// hedged protocol with them.

#include <gtest/gtest.h>

#include "core/crr.hpp"
#include "core/two_party.hpp"

namespace xchain::core {
namespace {

// A market where Delta corresponds to 12 hours (the paper's suggestion),
// so one tick = 6h at delta = 2 -> 1460 ticks/year.
constexpr double kTicksPerYear = 1460.0;
constexpr double kVolatility = 0.8;  // crypto-grade annualized vol
constexpr double kRate = 0.0;

TwoPartyConfig crr_sized_config() {
  TwoPartyConfig cfg;
  cfg.alice_tokens = 100'000;
  cfg.bob_tokens = 100'000;
  cfg.delta = 2;
  // Alice's principal is at risk for up to 6*Delta ticks (her redemption
  // deadline); Bob's for 5*Delta. Price each side's walk-away option.
  cfg.premium_b = sore_loser_premium(cfg.alice_tokens, kVolatility, kRate,
                                     6 * cfg.delta, kTicksPerYear);
  const Amount alice_total = sore_loser_premium(
      cfg.bob_tokens, kVolatility, kRate, 5 * cfg.delta, kTicksPerYear);
  cfg.premium_a = std::max<Amount>(alice_total, 1);
  return cfg;
}

TEST(CrrIntegration, PremiumsAreSmallFractionOfPrincipal) {
  const auto cfg = crr_sized_config();
  EXPECT_GT(cfg.premium_b, 0);
  EXPECT_GT(cfg.premium_a, 0);
  // p << v (the premise of §4): under 5% for a half-week lockup even at
  // 80% vol.
  EXPECT_LT(cfg.premium_b, cfg.alice_tokens / 20);
  EXPECT_LT(cfg.premium_a, cfg.bob_tokens / 20);
}

TEST(CrrIntegration, HedgedSwapRunsWithCrrPremiums) {
  const auto cfg = crr_sized_config();
  const auto ok = run_hedged_two_party(cfg, sim::DeviationPlan::conforming(),
                                       sim::DeviationPlan::conforming());
  EXPECT_TRUE(ok.swapped);
  EXPECT_EQ(ok.alice.coin_delta, 0);

  const auto bad = run_hedged_two_party(cfg, sim::DeviationPlan::conforming(),
                                        sim::DeviationPlan::halt_after(1));
  EXPECT_FALSE(bad.swapped);
  EXPECT_EQ(bad.alice.coin_delta, cfg.premium_b);  // compensated at the
                                                   // CRR-derived price
}

TEST(CrrIntegration, LongerLockupCommandsHigherPremium) {
  // Doubling Delta doubles the lock-up window, which must not *decrease*
  // the option value (and strictly increases it at this vol).
  const Amount short_p =
      sore_loser_premium(100'000, kVolatility, kRate, 12, kTicksPerYear);
  const Amount long_p =
      sore_loser_premium(100'000, kVolatility, kRate, 24, kTicksPerYear);
  EXPECT_GT(long_p, short_p);
}

TEST(CrrIntegration, PremiumScalesWithPrincipal) {
  const Amount small =
      sore_loser_premium(10'000, kVolatility, kRate, 12, kTicksPerYear);
  const Amount large =
      sore_loser_premium(1'000'000, kVolatility, kRate, 12, kTicksPerYear);
  // Roughly linear homogeneity of the ATM option price in spot.
  EXPECT_NEAR(static_cast<double>(large) / static_cast<double>(small), 100.0,
              5.0);
}

}  // namespace
}  // namespace xchain::core
