// Property tests of the hedged multi-party swap over randomized strongly
// connected digraphs: the paper's lemmas must hold on *any* swap topology,
// not just the textbook shapes.

#include <gtest/gtest.h>

#include <numeric>

#include "core/multi_party.hpp"
#include "crypto/rng.hpp"

namespace xchain::core {
namespace {

using graph::Digraph;
using graph::Vertex;
using sim::DeviationPlan;

/// A random strongly connected digraph: a Hamiltonian cycle through a
/// random permutation plus each remaining arc with probability ~1/3.
Digraph random_scc_digraph(std::size_t n, std::uint64_t seed) {
  crypto::Rng rng(seed);
  std::vector<Vertex> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = n - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.next_below(i + 1)]);
  }
  Digraph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    g.add_arc(perm[i], perm[(i + 1) % n]);
  }
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = 0; v < n; ++v) {
      if (u != v && rng.next_below(3) == 0) g.add_arc(u, v);
    }
  }
  return g;
}

struct RandomCase {
  std::size_t n;
  std::uint64_t seed;
};

class RandomGraphSweep : public ::testing::TestWithParam<RandomCase> {};

TEST_P(RandomGraphSweep, GraphIsWellFormed) {
  const auto [n, seed] = GetParam();
  const Digraph g = random_scc_digraph(n, seed);
  EXPECT_TRUE(g.strongly_connected());
  EXPECT_TRUE(g.is_feedback_vertex_set(g.minimum_feedback_vertex_set()));
  EXPECT_GE(g.diameter(), 1u);
}

TEST_P(RandomGraphSweep, ConformingRunCompletes) {
  const auto [n, seed] = GetParam();
  MultiPartyConfig cfg;
  cfg.g = random_scc_digraph(n, seed);
  cfg.delta = 1;
  const std::vector<DeviationPlan> plans(n, DeviationPlan::conforming());
  const auto r = run_multi_party_swap(cfg, plans);
  EXPECT_TRUE(r.all_redeemed) << "n=" << n << " seed=" << seed;
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_EQ(r.payoffs[v].coin_delta, 0) << "party " << v;
  }
}

TEST_P(RandomGraphSweep, SingleDeviatorLemmasHold) {
  const auto [n, seed] = GetParam();
  const Digraph g = random_scc_digraph(n, seed);
  for (Vertex d = 0; d < n; ++d) {
    for (int halt = 0; halt <= kMultiPartyHedgedActions; ++halt) {
      MultiPartyConfig cfg;
      cfg.g = g;
      cfg.delta = 1;
      std::vector<DeviationPlan> plans(n, DeviationPlan::conforming());
      plans[d] = DeviationPlan::halt_after(halt);
      const auto r = run_multi_party_swap(cfg, plans);

      Amount total = 0;
      for (std::size_t v = 0; v < n; ++v) {
        total += r.payoffs[v].coin_delta;
        if (v == d) continue;
        EXPECT_GE(r.payoffs[v].coin_delta, r.assets_refunded[v])
            << "n=" << n << " seed=" << seed << " deviator=" << d
            << " halt@" << halt << " party=" << v;
      }
      EXPECT_EQ(total, 0) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST_P(RandomGraphSweep, PairedDeviatorsCannotExtractFromCompliant) {
  const auto [n, seed] = GetParam();
  if (n > 4) GTEST_SKIP() << "pair sweep bounded for test runtime";
  const Digraph g = random_scc_digraph(n, seed);
  for (Vertex d1 = 0; d1 < n; ++d1) {
    for (Vertex d2 = static_cast<Vertex>(d1 + 1); d2 < n; ++d2) {
      for (int halt : {0, 2, 3}) {
        MultiPartyConfig cfg;
        cfg.g = g;
        cfg.delta = 1;
        std::vector<DeviationPlan> plans(n, DeviationPlan::conforming());
        plans[d1] = DeviationPlan::halt_after(halt);
        plans[d2] = DeviationPlan::halt_after(halt);
        const auto r = run_multi_party_swap(cfg, plans);
        for (std::size_t v = 0; v < n; ++v) {
          if (v == d1 || v == d2) continue;
          EXPECT_GE(r.payoffs[v].coin_delta, r.assets_refunded[v])
              << "n=" << n << " seed=" << seed << " deviators=" << d1 << ","
              << d2 << " halt@" << halt << " party=" << v;
        }
      }
    }
  }
}

std::vector<RandomCase> random_cases() {
  std::vector<RandomCase> cases;
  for (std::size_t n : {3u, 4u, 5u}) {
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
      cases.push_back({n, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Topologies, RandomGraphSweep,
                         ::testing::ValuesIn(random_cases()),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) +
                                  "_seed" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace xchain::core
