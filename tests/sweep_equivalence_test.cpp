// The arena-style world-reuse path (TraceMode::kOff + MultiChain::reset()
// per schedule) must be a pure accelerator: for every reference adapter,
// every schedule's audited outcomes — and the whole sweep report — must be
// identical to the legacy path that rebuilds a fresh, fully-traced world
// per schedule. This is the contract that lets the sweep run 5-10x faster
// without weakening the paper's universally-quantified guarantee.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/registry.hpp"
#include "sim/scenario.hpp"

namespace xchain::sim {
namespace {

// The reference configurations, fetched through the protocol registry —
// the same defaults the campaign layer and the CLI sweep (and that
// tests/registry_campaign_test.cpp pins byte-identical to the historical
// hard-coded structs).
std::vector<std::unique_ptr<ProtocolAdapter>> reference_adapters() {
  const ProtocolRegistry& reg = ProtocolRegistry::global();
  std::vector<std::unique_ptr<ProtocolAdapter>> out;
  out.push_back(reg.make("two-party"));
  out.push_back(reg.make("multi-party-fig3a"));
  ParamSet ring = reg.defaults("multi-party-ring");
  ring.set("n", "4");
  out.push_back(reg.make("multi-party-ring", ring));
  out.push_back(reg.make("auction-open"));
  out.push_back(reg.make("auction-sealed"));
  out.push_back(reg.make("broker"));
  out.push_back(reg.make("bootstrap"));
  out.push_back(reg.make("crr-ladder"));
  return out;
}

void expect_same_outcomes(const std::vector<PartyOutcome>& fresh,
                          const std::vector<PartyOutcome>& reused,
                          const std::string& label) {
  ASSERT_EQ(reused.size(), fresh.size()) << label;
  for (std::size_t p = 0; p < fresh.size(); ++p) {
    SCOPED_TRACE(label + " / " + fresh[p].name);
    EXPECT_EQ(reused[p].name, fresh[p].name);
    EXPECT_EQ(reused[p].conforming, fresh[p].conforming);
    EXPECT_EQ(reused[p].payoff.by_symbol, fresh[p].payoff.by_symbol);
    EXPECT_EQ(reused[p].payoff.coin_delta, fresh[p].payoff.coin_delta);
    EXPECT_EQ(reused[p].payoff.value_delta, fresh[p].payoff.value_delta);
    EXPECT_EQ(reused[p].bound.min_coin_delta, fresh[p].bound.min_coin_delta);
    EXPECT_EQ(reused[p].bound.spend_allowance, fresh[p].bound.spend_allowance);
    EXPECT_EQ(reused[p].bound.goods_received, fresh[p].bound.goods_received);
  }
}

// Schedule-for-schedule: the reused world (one adapter instance resetting
// one traceless world) must report exactly what a fresh traced world
// reports, for every schedule of every reference adapter.
TEST(SweepEquivalence, ReusedWorldMatchesFreshWorldPerSchedule) {
  for (const auto& adapter : reference_adapters()) {
    const auto fresh_engine = adapter->clone();
    fresh_engine->set_world_reuse(false);
    const auto reused_engine = adapter->clone();  // default: reuse + kOff

    for (const Schedule& s : ScenarioRunner(*adapter).enumerate()) {
      const auto fresh = fresh_engine->run(s);
      const auto reused = reused_engine->run(s);
      expect_same_outcomes(fresh, reused, s.label);
      // Re-running the SAME schedule on the reused world must also be
      // stable: reset() rolls everything back, not just most things.
      expect_same_outcomes(fresh, reused_engine->run(s),
                           s.label + " (rerun)");
    }
  }
}

// Whole-report equivalence through ScenarioRunner, fresh-mode vs default.
TEST(SweepEquivalence, SweepReportsIdenticalAcrossWorldModes) {
  for (const auto& adapter : reference_adapters()) {
    const SweepReport reused = ScenarioRunner(*adapter).sweep();

    auto fresh_engine = adapter->clone();
    fresh_engine->set_world_reuse(false);
    const SweepReport fresh = ScenarioRunner(*fresh_engine).sweep();

    SCOPED_TRACE(adapter->name());
    EXPECT_EQ(reused.protocol, fresh.protocol);
    EXPECT_EQ(reused.schedules_run, fresh.schedules_run);
    EXPECT_EQ(reused.conforming_audited, fresh.conforming_audited);
    EXPECT_EQ(reused.violations.size(), fresh.violations.size());
    EXPECT_TRUE(reused.ok()) << reused.str();
    EXPECT_TRUE(fresh.ok()) << fresh.str();
  }
}

// Delay schedules must behave identically on a reused (reset-per-run)
// world and on a fresh traced world: pending delayed submissions live on
// the per-run Party objects, never on the world, so a reset can never leak
// a queued action into the next schedule. Pinned per schedule over the
// timely space, and as whole reports over a bounded late space.
TEST(SweepEquivalence, DelaySchedulesMatchAcrossWorldModesPerSchedule) {
  SweepOptions opts;
  opts.strategies.kind = StrategySpace::Kind::kTimelyDelays;
  // Keep the per-schedule fresh-world pass affordable; the whole-report
  // check below covers the larger spaces.
  opts.strategies.max_schedules = 400;
  for (const auto& adapter : reference_adapters()) {
    const auto fresh_engine = adapter->clone();
    fresh_engine->set_world_reuse(false);
    const auto reused_engine = adapter->clone();  // default: reuse + kOff

    for (const Schedule& s : ScenarioRunner(*adapter).enumerate(opts)) {
      const auto fresh = fresh_engine->run(s);
      const auto reused = reused_engine->run(s);
      expect_same_outcomes(fresh, reused, s.label);
      // Re-running the SAME delayed schedule on the reused world must be
      // stable: reset() rolls chains back and the new Party objects carry
      // fresh (empty) delay queues.
      expect_same_outcomes(fresh, reused_engine->run(s),
                           s.label + " (rerun)");
    }
  }
}

TEST(SweepEquivalence, LateDelayReportsIdenticalAcrossWorldModes) {
  SweepOptions opts;
  opts.strategies.kind = StrategySpace::Kind::kLateDelays;
  opts.strategies.max_schedules = 1500;
  for (const auto& adapter : reference_adapters()) {
    const SweepReport reused = ScenarioRunner(*adapter).sweep(opts);

    auto fresh_engine = adapter->clone();
    fresh_engine->set_world_reuse(false);
    const SweepReport fresh = ScenarioRunner(*fresh_engine).sweep(opts);

    SCOPED_TRACE(adapter->name());
    EXPECT_EQ(reused.protocol, fresh.protocol);
    EXPECT_EQ(reused.schedules_run, fresh.schedules_run);
    EXPECT_EQ(reused.conforming_audited, fresh.conforming_audited);
    EXPECT_EQ(reused.violations.size(), fresh.violations.size());
    EXPECT_EQ(reused.truncations, fresh.truncations);
    EXPECT_TRUE(reused.ok()) << reused.str();
    EXPECT_TRUE(fresh.ok()) << fresh.str();
  }
}

// The world-reuse knob survives cloning in the state the clone's maker
// set, and parallel sweeps (which clone per worker) stay identical to
// serial whatever the mode.
TEST(SweepEquivalence, ParallelReusedSweepMatchesSerial) {
  for (const auto& adapter : reference_adapters()) {
    ScenarioRunner runner(*adapter);
    const SweepReport serial = runner.sweep();
    const SweepReport parallel = runner.sweep({-1, 4, {}});
    SCOPED_TRACE(adapter->name());
    EXPECT_EQ(parallel.schedules_run, serial.schedules_run);
    EXPECT_EQ(parallel.conforming_audited, serial.conforming_audited);
    EXPECT_EQ(parallel.violations.size(), serial.violations.size());
  }
}

}  // namespace
}  // namespace xchain::sim
