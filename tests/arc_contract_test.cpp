#include <gtest/gtest.h>

#include "chain/blockchain.hpp"
#include "contracts/arc_contract.hpp"
#include "core/premiums.hpp"
#include "crypto/secret.hpp"

namespace xchain::contracts {
namespace {

using chain::Address;
using chain::MultiChain;
using chain::TxContext;
using graph::Digraph;
using graph::Path;

// Figure 3a digraph, arc (B, A) = (1, 0), single leader A = 0, p = 1.
// Schedule (Delta = 1, n = 3): phase ends at 3/6/9; hashkey_base = 9.
class ArcFixture : public ::testing::Test {
 protected:
  ArcFixture()
      : g_(Digraph::figure3a()),
        bc_(chains_.add_chain("chain-1")),
        secret_(crypto::Secret::from_label("kA")),
        keys_{crypto::keygen("party-0"), crypto::keygen("party-1"),
              crypto::keygen("party-2")} {
    MultiPartyArcContract::Params p;
    p.g = g_;
    p.arc = {1, 0};  // B -> A
    p.asset_symbol = "token-1";
    p.asset_amount = 100;
    p.premium_unit = 1;
    p.escrow_premium = 5;  // E(B,A) from Equation 2
    p.hashlocks = {{0, secret_.hashlock()}};
    p.party_keys = {keys_[0].pub, keys_[1].pub, keys_[2].pub};
    p.delta = 1;
    p.redemption_premium_deadline = 6;
    p.escrow_deadline = 9;
    p.hashkey_base = 9;
    arc_ = &bc_.deploy<MultiPartyArcContract>(p);
    bc_.ledger_for_setup().mint(Address::party(1), "token-1", 100);
    bc_.ledger_for_setup().mint(Address::party(1), bc_.native(), 100);
    bc_.ledger_for_setup().mint(Address::party(0), bc_.native(), 100);
  }

  void produce_until(Tick t) {
    for (Tick now = bc_.height() + 1; now <= t; ++now) {
      chains_.produce_all(now);
    }
  }
  void submit(PartyId who, std::function<void(TxContext&)> fn, Tick t) {
    bc_.submit({who, "tx", std::move(fn)});
    produce_until(t);
  }
  Amount coins(PartyId p) {
    return bc_.ledger().balance(Address::party(p), bc_.native());
  }

  /// The redemption premium A deposits on (B, A): path (A), amount 2.
  void deposit_redemption(Tick t) {
    const Path q{0};
    const auto sig = crypto::sign_premium_path(keys_[0], 0, q);
    submit(0, [this, q, sig](TxContext& c) {
      arc_->deposit_redemption_premium(c, 0, q, sig);
    }, t);
  }

  MultiChain chains_;
  Digraph g_;
  chain::Blockchain& bc_;
  crypto::Secret secret_;
  crypto::KeyPair keys_[3];
  MultiPartyArcContract* arc_ = nullptr;
};

TEST_F(ArcFixture, RedemptionPremiumAmountDictatedByEquationOne) {
  deposit_redemption(0);
  ASSERT_TRUE(arc_->redemption_premium_deposited(0));
  // R((A), B) = 2 (premiums_test cross-checks Equation 1 directly).
  EXPECT_EQ(arc_->redemption_premium_amount(0), 2);
  EXPECT_EQ(coins(0), 98);
}

TEST_F(ArcFixture, ActivationRequiresAllPremiums) {
  EXPECT_FALSE(arc_->escrow_premium_activated());
  deposit_redemption(0);
  EXPECT_TRUE(arc_->escrow_premium_activated());  // single leader
}

TEST_F(ArcFixture, RejectsBadPath) {
  // Path must start at the recipient (A=0) and end at the leader.
  const Path q{2, 0};  // starts at C
  const auto sig = crypto::sign_premium_path(keys_[0], 0, q);
  submit(0, [this, q, sig](TxContext& c) {
    arc_->deposit_redemption_premium(c, 0, q, sig);
  }, 0);
  EXPECT_FALSE(arc_->redemption_premium_deposited(0));
}

TEST_F(ArcFixture, RejectsForgedPathSignature) {
  const Path q{0};
  const auto sig = crypto::sign_premium_path(keys_[2], 0, q);  // wrong key
  submit(0, [this, q, sig](TxContext& c) {
    arc_->deposit_redemption_premium(c, 0, q, sig);
  }, 0);
  EXPECT_FALSE(arc_->redemption_premium_deposited(0));
}

TEST_F(ArcFixture, RejectsLatePremium) {
  produce_until(6);
  deposit_redemption(7);  // deadline 6
  EXPECT_FALSE(arc_->redemption_premium_deposited(0));
}

TEST_F(ArcFixture, EscrowPremiumRefundedOnEscrow) {
  submit(1, [this](TxContext& c) { arc_->deposit_escrow_premium(c); }, 0);
  EXPECT_TRUE(arc_->escrow_premium_deposited());
  EXPECT_EQ(coins(1), 95);
  submit(1, [this](TxContext& c) { arc_->escrow_asset(c); }, 1);
  EXPECT_TRUE(arc_->escrowed());
  EXPECT_TRUE(arc_->escrow_premium_refunded());
  EXPECT_EQ(coins(1), 100);
}

TEST_F(ArcFixture, ActivatedEscrowPremiumAwardedWhenAssetMissing) {
  submit(1, [this](TxContext& c) { arc_->deposit_escrow_premium(c); }, 0);
  deposit_redemption(1);  // activates
  produce_until(10);      // escrow deadline 9; sweep at 10
  EXPECT_TRUE(arc_->escrow_premium_awarded());
  EXPECT_EQ(coins(0), 98 + 5);  // A paid 2 premium, received 5 award
}

TEST_F(ArcFixture, UnactivatedEscrowPremiumRefunded) {
  submit(1, [this](TxContext& c) { arc_->deposit_escrow_premium(c); }, 0);
  produce_until(10);  // never activated
  EXPECT_TRUE(arc_->escrow_premium_refunded());
  EXPECT_EQ(coins(1), 100);
}

TEST_F(ArcFixture, HashkeyRedeemsAssetAndRefundsPremium) {
  deposit_redemption(0);
  submit(1, [this](TxContext& c) { arc_->escrow_asset(c); }, 1);
  const auto key =
      crypto::make_leader_hashkey(secret_.value(), 0, keys_[0]);
  produce_until(9);
  submit(0, [this, key](TxContext& c) { arc_->present_hashkey(c, 0, key); },
         10);  // path length 1: deadline 9 + (2+1)*1 = 12
  EXPECT_TRUE(arc_->redeemed());
  EXPECT_TRUE(arc_->redemption_premium_refunded(0));
  EXPECT_EQ(bc_.ledger().balance(Address::party(0), "token-1"), 100);
  EXPECT_EQ(coins(0), 100);
}

TEST_F(ArcFixture, HashkeyPastPathDeadlineRejected) {
  deposit_redemption(0);
  submit(1, [this](TxContext& c) { arc_->escrow_asset(c); }, 1);
  const auto key =
      crypto::make_leader_hashkey(secret_.value(), 0, keys_[0]);
  produce_until(12);  // deadline for |q|=1 is 12 (inclusive)
  submit(0, [this, key](TxContext& c) { arc_->present_hashkey(c, 0, key); },
         13);
  EXPECT_FALSE(arc_->redeemed());
  EXPECT_FALSE(arc_->hashlock_open(0));
}

TEST_F(ArcFixture, LongerPathGetsLongerDeadline) {
  // (diam + |q|) * Delta: diam = 2, so |q|=1 -> 12, |q|=3 -> 14.
  EXPECT_EQ(arc_->path_deadline(1), 12);
  EXPECT_EQ(arc_->path_deadline(3), 14);
}

TEST_F(ArcFixture, HashkeyWithWrongPresenterRejected) {
  deposit_redemption(0);
  submit(1, [this](TxContext& c) { arc_->escrow_asset(c); }, 1);
  // A hashkey extended by C has presenter C, not this arc's recipient A.
  auto key = crypto::make_leader_hashkey(secret_.value(), 0, keys_[0]);
  key = crypto::extend_hashkey(key, 2, keys_[2]);
  produce_until(9);
  submit(2, [this, key](TxContext& c) { arc_->present_hashkey(c, 0, key); },
         10);
  EXPECT_FALSE(arc_->hashlock_open(0));
}

TEST_F(ArcFixture, UnredeemedAssetRefundsAtMaxDeadline) {
  submit(1, [this](TxContext& c) { arc_->escrow_asset(c); }, 1);
  // Max deadline: hashkey_base + (diam + n) * Delta = 9 + 5 = 14.
  produce_until(14);
  EXPECT_FALSE(arc_->refunded());
  produce_until(15);
  EXPECT_TRUE(arc_->refunded());
  EXPECT_EQ(bc_.ledger().balance(Address::party(1), "token-1"), 100);
}

TEST_F(ArcFixture, RedemptionPremiumAwardedWhenHashkeyNeverArrives) {
  deposit_redemption(0);
  // Path (A) has deadline 12; at 13 the premium goes to the arc sender B.
  produce_until(13);
  EXPECT_TRUE(arc_->redemption_premium_awarded(0));
  EXPECT_EQ(coins(1), 102);
  EXPECT_EQ(coins(0), 98);
}

}  // namespace
}  // namespace xchain::contracts
