#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "core/two_party.hpp"
#include "graph/digraph.hpp"
#include "sim/plan_space.hpp"
#include "sim/reference_configs.hpp"
#include "sim/registry.hpp"
#include "sim/scenario.hpp"

namespace xchain::sim {
namespace {

// Adapters come from the protocol registry; the few tests that drive the
// run_* free functions directly still fetch the matching config structs
// through reference_configs.hpp (itself a shim over the same registry
// defaults), so both paths always agree on the numbers.
std::unique_ptr<ProtocolAdapter> make_ref(const std::string& name) {
  return ProtocolRegistry::global().make(name);
}

// ---------------------------------------------------------------------------
// Enumeration shape
// ---------------------------------------------------------------------------

TEST(ScenarioEnumeration, TwoPartyCrossProduct) {
  const auto adapter = make_ref("two-party");
  ScenarioRunner runner(*adapter);
  // {conform, halt@0..2} per party: 4^2 distinct schedules.
  const auto schedules = runner.enumerate();
  EXPECT_EQ(schedules.size(), 16u);

  std::set<std::string> labels;
  for (const auto& s : schedules) labels.insert(s.label);
  EXPECT_EQ(labels.size(), schedules.size()) << "labels must be distinct";
}

TEST(ScenarioEnumeration, MaxDeviatorsBoundsTheSweep) {
  const auto adapter = make_ref("multi-party-fig3a");
  ScenarioRunner runner(*adapter);
  // Full cross product: (4 halt points + conform)^3.
  EXPECT_EQ(runner.enumerate().size(), 125u);
  // Single deviator: 1 all-conform + 3 parties * 4 halt points.
  EXPECT_EQ(runner.enumerate(1).size(), 13u);
  EXPECT_EQ(runner.enumerate(0).size(), 1u);
}

TEST(ScenarioEnumeration, AuctionVariantsMultiply) {
  const auto adapter = make_ref("auction-open");
  ScenarioRunner runner(*adapter);
  // 7 auctioneer strategies x {conform, halt@0, halt@1}^2 bidders.
  EXPECT_EQ(runner.enumerate().size(), 63u);
  // A dishonest variant counts as the deviator: with max_deviators=1 only
  // the honest variant may combine with a single bidder deviation.
  // honest * (1 + 2*2) + 6 dishonest * all-conform = 5 + 6.
  EXPECT_EQ(runner.enumerate(1).size(), 11u);
}

// ---------------------------------------------------------------------------
// The tentpole property: the hedging bound holds on EVERY schedule.
// ---------------------------------------------------------------------------

TEST(ScenarioSweep, TwoPartyHedgedBoundHoldsOnAllSchedules) {
  const auto adapter = make_ref("two-party");
  const auto report = ScenarioRunner(*adapter).sweep();
  EXPECT_EQ(report.schedules_run, 16u);
  EXPECT_GT(report.conforming_audited, 0u);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST(ScenarioSweep, Figure3aHedgedBoundHoldsOnAllSchedules) {
  // Exhaustive: every party may halt at every phase simultaneously —
  // 125 schedules, far beyond the single/paired-deviator lemma sweeps.
  const auto adapter = make_ref("multi-party-fig3a");
  const auto report = ScenarioRunner(*adapter).sweep();
  EXPECT_EQ(report.schedules_run, 125u);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST(ScenarioSweep, CycleFourHedgedBoundHolds) {
  ParamSet ring = ProtocolRegistry::global().defaults("multi-party-ring");
  ring.set("n", "4");
  const auto adapter = ProtocolRegistry::global().make("multi-party-ring",
                                                       ring);
  // 5^4 = 625 schedules; keep runtime sane with the full product anyway.
  const auto report = ScenarioRunner(*adapter).sweep();
  EXPECT_EQ(report.schedules_run, 625u);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST(ScenarioSweep, OpenAuctionBoundHoldsOnAllSchedules) {
  const auto adapter = make_ref("auction-open");
  const auto report = ScenarioRunner(*adapter).sweep();
  EXPECT_EQ(report.schedules_run, 63u);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST(ScenarioSweep, SealedAuctionBoundHoldsOnAllSchedules) {
  const auto adapter = make_ref("auction-sealed");
  const auto report = ScenarioRunner(*adapter).sweep();
  // 7 strategies x {conform, halt@0..2}^2 bidders.
  EXPECT_EQ(report.schedules_run, 112u);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST(ScenarioSweep, BrokerHedgedBoundHoldsOnAllSchedules) {
  // Exhaustive over all three parties' halt points — 5^3 schedules, far
  // beyond the single-deviator §8.2 walkthroughs in broker_test.cpp.
  const auto adapter = make_ref("broker");
  const auto report = ScenarioRunner(*adapter).sweep();
  EXPECT_EQ(report.schedules_run, 125u);
  EXPECT_EQ(report.conforming_audited, 75u);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST(ScenarioSweep, BootstrapLadderBoundHoldsOnAllSchedules) {
  // r = 2 rounds: {conform, halt@0..3}^2 = 25 schedules through the
  // LadderContract pair.
  const auto adapter = make_ref("bootstrap");
  const auto report = ScenarioRunner(*adapter).sweep();
  EXPECT_EQ(report.schedules_run, 25u);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST(ScenarioSweep, CrrLadderBoundHoldsOnAllSchedules) {
  // Single-rung ladder with CRR-priced premiums (§4): the floor a locked
  // conforming party must earn is the option-priced premium itself.
  const BootstrapSwapAdapter adapter =
      make_crr_ladder_adapter(reference_crr_ladder_config());
  EXPECT_GT(adapter.config().apricot_premiums.at(0), 0);
  const auto report = ScenarioRunner(adapter).sweep();
  EXPECT_EQ(report.schedules_run, 16u);
  EXPECT_TRUE(report.ok()) << report.str();
}

// ---------------------------------------------------------------------------
// Unhedged baselines: stripping the premiums out of the new protocols must
// make the hedged floor fail somewhere — the audit has teeth on every
// engine, and the premium machinery is what earns the 0-violation sweeps.
// ---------------------------------------------------------------------------

TEST(ScenarioSweep, UnhedgedBrokerViolatesTheHedgedFloor) {
  // §8.2 machinery present, but premiums are zero — expressed as a registry
  // parameter override, the same way a campaign would sweep it.
  ParamSet params = ProtocolRegistry::global().defaults("broker");
  params.set("premium_unit", "0");
  const core::BrokerConfig cfg = broker_config_from(params);
  const auto adapter = ProtocolRegistry::global().make("broker", params);
  ScenarioRunner runner(*adapter);

  // With p = 0 the adapter's own floor degrades to break-even, so its
  // sweep stays clean...
  const auto report = runner.sweep();
  EXPECT_TRUE(report.ok()) << report.str();

  // ...but auditing the same outcomes against the hedged expectation (a
  // locked-and-refunded seller earns at least one premium unit) must fail:
  // without premiums, lock-ups go uncompensated.
  std::vector<Violation> violations;
  for (const Schedule& s : runner.enumerate()) {
    const auto r =
        core::run_broker_deal(cfg, s.plans[0], s.plans[1], s.plans[2]);
    std::vector<PartyOutcome> outcomes;
    outcomes.push_back({"alice", s.plans[0].is_conforming(), r.alice, {}});
    outcomes.push_back({"bob", s.plans[1].is_conforming(), r.bob, {}});
    if (r.bob_lockup > 0) outcomes.back().bound.min_coin_delta = 1;
    outcomes.push_back({"carol", s.plans[2].is_conforming(), r.carol, {}});
    if (r.carol_lockup > 0) outcomes.back().bound.min_coin_delta = 1;
    audit_schedule(s.label, outcomes, violations);
  }
  EXPECT_FALSE(violations.empty())
      << "premium-free broker lock-ups should breach the hedged floor";
}

TEST(ScenarioSweep, UnhedgedBaseSwapViolatesTheLadderFloor) {
  // The ladder protocols' baseline is §5.1's premium-free atomic swap:
  // audited against the hedged expectation (any locked-and-refunded
  // principal earns at least one premium), it must produce violations —
  // that sore-loser exposure is what §6's ladder exists to hedge.
  const core::TwoPartyConfig cfg = reference_two_party_config();
  std::vector<Violation> violations;
  for (const DeviationPlan& pa : plan_space(core::kBaseTwoPartyActions)) {
    for (const DeviationPlan& pb : plan_space(core::kBaseTwoPartyActions)) {
      const auto r = core::run_base_two_party(cfg, pa, pb);
      std::vector<PartyOutcome> outcomes;
      outcomes.push_back({"alice", pa.is_conforming(), r.alice, {}});
      if (r.alice_lockup > 0) outcomes.back().bound.min_coin_delta = 1;
      outcomes.push_back({"bob", pb.is_conforming(), r.bob, {}});
      if (r.bob_lockup > 0) outcomes.back().bound.min_coin_delta = 1;
      audit_schedule("base-two-party[" + pa.str() + "," + pb.str() + "]",
                     outcomes, violations);
    }
  }
  EXPECT_FALSE(violations.empty())
      << "the unhedged base swap should breach the premium floor somewhere";
}

// ---------------------------------------------------------------------------
// Whole-fleet coverage: every protocol engine is swept, and the combined
// schedule space has real breadth.
// ---------------------------------------------------------------------------

TEST(ScenarioSweep, AllRegisteredProtocolEnginesSweptCleanly) {
  // Every protocol the registry knows — the seven reference families plus
  // any future registration — sweeps its default configuration clean.
  std::size_t total = 0;
  for (const std::string& name : ProtocolRegistry::global().names()) {
    const auto engine = ProtocolRegistry::global().make(name);
    const auto report = ScenarioRunner(*engine).sweep();
    EXPECT_TRUE(report.ok()) << report.str();
    EXPECT_GT(report.conforming_audited, 0u) << name;
    total += report.schedules_run;
  }
  EXPECT_GE(total, 350u);
}

TEST(ScenarioSweep, AtLeastAHundredSchedulesAcrossThreeProtocols) {
  // The acceptance criterion of the sweep engine, asserted end-to-end.
  std::size_t total = 0;
  for (const char* name : {"two-party", "multi-party-fig3a", "auction-open"}) {
    const auto adapter = make_ref(name);
    const auto report = ScenarioRunner(*adapter).sweep();
    EXPECT_TRUE(report.ok()) << report.str();
    total += report.schedules_run;
  }
  EXPECT_GE(total, 100u);
}

// ---------------------------------------------------------------------------
// The audit itself: it must actually catch uncompensated losses.
// ---------------------------------------------------------------------------

TEST(PayoffAudit, FlagsConformingPartyBelowFloor) {
  PartyOutcome victim{"victim", true, {}, {}};
  victim.payoff.coin_delta = 0;
  victim.bound.min_coin_delta = 1;  // locked up: entitled to a premium
  PartyOutcome deviator{"deviator", false, {}, {}};

  std::vector<Violation> violations;
  const auto audited =
      audit_schedule("test", {victim, deviator}, violations,
                     /*check_conservation=*/false);
  EXPECT_EQ(audited, 1u);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].party, "victim");
  EXPECT_EQ(violations[0].required_min, 1);
}

TEST(PayoffAudit, FlagsCoinNegativeWithoutGoods) {
  // Even if an adapter under-reports the entitlement with a negative
  // floor, a conforming party that received no goods must never end
  // coin-negative: the defence-in-depth branch catches it.
  PartyOutcome victim{"victim", true, {}, {}};
  victim.payoff.coin_delta = -5;
  victim.bound.min_coin_delta = -10;

  std::vector<Violation> violations;
  audit_schedule("test", {victim}, violations, /*check_conservation=*/false);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].detail, "coin-negative without goods");
}

TEST(PayoffAudit, AllowsSpendAgainstGoods) {
  PartyOutcome winner{"winner", true, {}, {}};
  winner.payoff.coin_delta = -100;
  winner.bound.goods_received = true;
  winner.bound.spend_allowance = 100;

  std::vector<Violation> violations;
  audit_schedule("test", {winner}, violations, /*check_conservation=*/false);
  EXPECT_TRUE(violations.empty());

  // Paying more than the allowance is theft again.
  winner.payoff.coin_delta = -101;
  audit_schedule("test", {winner}, violations, /*check_conservation=*/false);
  EXPECT_EQ(violations.size(), 1u);
}

TEST(PayoffAudit, DeviatorsAreNotAudited) {
  PartyOutcome deviator{"deviator", false, {}, {}};
  deviator.payoff.coin_delta = -42;

  std::vector<Violation> violations;
  const auto audited = audit_schedule("test", {deviator}, violations,
                                      /*check_conservation=*/false);
  EXPECT_EQ(audited, 0u);
  EXPECT_TRUE(violations.empty());
}

TEST(PayoffAudit, ConservationCheckCatchesStrandedCoins) {
  PartyOutcome a{"a", false, {}, {}};
  a.payoff.coin_delta = -3;  // nobody received these 3 coins

  std::vector<Violation> violations;
  audit_schedule("test", {a}, violations, /*check_conservation=*/true);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].party, "<all>");
}

// The base (unhedged) multi-party protocol is the paper's counterexample:
// it must NOT pass a premium-floor audit — compliant parties get locked up
// with zero compensation. The sweep proves the audit has teeth on a real
// protocol, not just on synthetic outcomes.
TEST(ScenarioSweep, BaseProtocolLockupIsVisibleInSweep) {
  // The unhedged baseline as a registry override (`hedged=0`), the same
  // assignment a campaign grid would use.
  ParamSet params = ProtocolRegistry::global().defaults("multi-party-fig3a");
  params.set("hedged", "0");
  const core::MultiPartyConfig cfg =
      multi_party_config_from(params, graph::Digraph::figure3a());
  const auto adapter =
      ProtocolRegistry::global().make("multi-party-fig3a", params);
  ScenarioRunner runner(*adapter);

  // The base adapter's floor is 0 (no premiums exist to earn), so the
  // audit passes vacuously...
  const auto report = runner.sweep();
  EXPECT_EQ(report.schedules_run, 27u);  // (2 halt points + conform)^3
  EXPECT_TRUE(report.ok()) << report.str();

  // ...but running the base outcomes against the hedged floor (premium per
  // refunded asset) must produce violations: that asymmetry IS the paper's
  // motivation, mechanically checked.
  std::vector<Violation> violations;
  for (const Schedule& s : runner.enumerate()) {
    const auto r = core::run_multi_party_swap(cfg, s.plans);
    std::vector<PartyOutcome> outcomes;
    for (std::size_t v = 0; v < cfg.g.size(); ++v) {
      PartyOutcome o{"party-" + std::to_string(v),
                     s.plans[v].is_conforming(), r.payoffs[v], {}};
      o.bound.min_coin_delta = cfg.premium_unit * r.assets_refunded[v];
      outcomes.push_back(std::move(o));
    }
    audit_schedule(s.label, outcomes, violations);
  }
  EXPECT_FALSE(violations.empty())
      << "the unhedged baseline should violate the hedged floor somewhere";
}

}  // namespace
}  // namespace xchain::sim
