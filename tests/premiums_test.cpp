#include <gtest/gtest.h>

#include "core/premiums.hpp"

namespace xchain::core {
namespace {

using graph::Digraph;
using graph::Path;
using graph::Vertex;

// ---------------------------------------------------------------------------
// Equation 1: redemption premiums
// ---------------------------------------------------------------------------

TEST(RedemptionPremium, Figure3aLeaderAlice) {
  // Arcs: A->B, B->A, B->C, C->A; leader A, p = 1.
  const Digraph g = Digraph::figure3a();
  // R((A), B): B covers p plus its own re-deposit toward A (cycle) = 2.
  EXPECT_EQ(redemption_premium(g, {0}, 1, 1), 2);
  // R((A), C): C covers p plus B's chain (B covers p plus its cycle) = 3.
  EXPECT_EQ(redemption_premium(g, {0}, 2, 1), 3);
  // Leader's total deposit = 2 + 3.
  EXPECT_EQ(leader_redemption_premium(g, 0, 1), 5);
}

TEST(RedemptionPremium, ScalesLinearlyWithP) {
  const Digraph g = Digraph::figure3a();
  EXPECT_EQ(leader_redemption_premium(g, 0, 7), 5 * 7);
}

TEST(RedemptionPremium, TwoPartyDigraph) {
  const Digraph g = Digraph::two_party();
  // R((A), B) = p + R((B,A), A) = p + p = 2p.
  EXPECT_EQ(redemption_premium(g, {0}, 1, 1), 2);
  EXPECT_EQ(leader_redemption_premium(g, 0, 1), 2);
}

TEST(RedemptionPremium, CycleGraphLinearInN) {
  // §7 end: "If there is a unique path between any two parties, then each
  // leader's premium is linear in n."
  for (std::size_t n : {2u, 3u, 5u, 8u, 12u}) {
    const Digraph g = Digraph::cycle(n);
    EXPECT_EQ(leader_redemption_premium(g, 0, 1), static_cast<Amount>(n))
        << "n=" << n;
  }
}

TEST(RedemptionPremium, CompleteGraphExponentialInN) {
  // §7 end: "In the worst case, for a complete digraph, each leader's
  // premium is exponential in n."
  Amount prev = 0;
  std::vector<Amount> values;
  for (std::size_t n : {2u, 3u, 4u, 5u, 6u}) {
    const Amount r = leader_redemption_premium(Digraph::complete(n), 0, 1);
    values.push_back(r);
    if (prev > 0) {
      EXPECT_GE(r, 2 * prev) << "n=" << n;  // at-least-doubling growth
    }
    prev = r;
  }
  EXPECT_EQ(values[0], 2);   // K_2
  EXPECT_EQ(values[1], 10);  // K_3
}

TEST(RedemptionPremium, InteriorVertexGetsBaseP) {
  const Digraph g = Digraph::figure3a();
  // B already on path (B, A): amount is just p.
  EXPECT_EQ(redemption_premium(g, {1, 0}, 1, 3), 3);
}

TEST(RedemptionDeposits, LeaderStartsBackwardFlow) {
  const Digraph g = Digraph::figure3a();
  const auto deposits = redemption_deposits_for(g, 0, {}, 1);
  ASSERT_EQ(deposits.size(), 2u);  // incoming arcs (B,A), (C,A)
  EXPECT_EQ(deposits[0].arc, (graph::Arc{1, 0}));
  EXPECT_EQ(deposits[0].path, (Path{0}));
  EXPECT_EQ(deposits[0].amount, 2);
  EXPECT_EQ(deposits[1].arc, (graph::Arc{2, 0}));
  EXPECT_EQ(deposits[1].amount, 3);
}

TEST(RedemptionDeposits, FollowerExtendsPath) {
  const Digraph g = Digraph::figure3a();
  // C saw a premium with path (A) on its outgoing arc (C,A); C deposits on
  // its incoming arc (B,C) with path (C,A).
  const auto deposits = redemption_deposits_for(g, 2, {0}, 1);
  ASSERT_EQ(deposits.size(), 1u);
  EXPECT_EQ(deposits[0].arc, (graph::Arc{1, 2}));
  EXPECT_EQ(deposits[0].path, (Path{2, 0}));
  EXPECT_EQ(deposits[0].amount, 2);
}

// ---------------------------------------------------------------------------
// Equation 2: escrow premiums
// ---------------------------------------------------------------------------

TEST(EscrowPremium, Figure3aValues) {
  const Digraph g = Digraph::figure3a();
  const auto e = escrow_premiums(g, {0}, 1);
  // Arcs entering leader A carry R(A) = 5.
  EXPECT_EQ(e.at({1, 0}), 5);
  EXPECT_EQ(e.at({2, 0}), 5);
  // Arc (B,C): covers C's outgoing premiums = E(C,A) = 5.
  EXPECT_EQ(e.at({1, 2}), 5);
  // Arc (A,B): covers B's outgoing premiums = E(B,A) + E(B,C) = 10.
  EXPECT_EQ(e.at({0, 1}), 10);
}

TEST(EscrowPremium, RequiresFeedbackVertexSet) {
  const Digraph g = Digraph::figure3a();
  EXPECT_THROW(escrow_premiums(g, {2}, 1), std::invalid_argument);
  EXPECT_THROW(escrow_premiums(g, {}, 1), std::invalid_argument);
}

TEST(EscrowPremium, CycleGraph) {
  const Digraph g = Digraph::cycle(4);  // 0->1->2->3->0, leader 0
  const auto e = escrow_premiums(g, {0}, 1);
  // R(0) = 4. Every follower has exactly one outgoing arc, so all escrow
  // premiums equal R(0) by the chain rule.
  for (const auto& [arc, amount] : e) {
    EXPECT_EQ(amount, 4) << arc.first << "->" << arc.second;
  }
}

TEST(EscrowPremium, FollowerCoversOutgoing) {
  // Follower invariant of Lemma 3: E(u,v) >= sum of E(v,w) for followers v.
  const Digraph g = Digraph::complete(4);
  const auto leaders = g.minimum_feedback_vertex_set();
  const auto e = escrow_premiums(g, leaders, 1);
  std::vector<bool> is_leader(g.size(), false);
  for (Vertex l : leaders) is_leader[l] = true;
  for (Vertex v = 0; v < g.size(); ++v) {
    if (is_leader[v]) continue;
    Amount outgoing = 0;
    for (Vertex w : g.out_neighbors(v)) outgoing += e.at({v, w});
    for (Vertex u : g.in_neighbors(v)) {
      EXPECT_GE(e.at({u, v}), outgoing);
    }
  }
}

// ---------------------------------------------------------------------------
// §6: bootstrapping
// ---------------------------------------------------------------------------

TEST(Bootstrap, LadderAmounts) {
  // A = B = 1,000,000, P = 100, r = 3.
  const auto s = bootstrap_schedule(1'000'000, 1'000'000, 100.0, 3);
  ASSERT_EQ(s.apricot.size(), 4u);
  EXPECT_EQ(s.apricot[0], 1'000'000);
  EXPECT_EQ(s.apricot[1], 10'000);   // A/P
  EXPECT_EQ(s.apricot[2], 100);      // A/P^2
  EXPECT_EQ(s.apricot[3], 1);        // A/P^3
  EXPECT_EQ(s.banana[1], 20'000);    // (A+B)/P
  EXPECT_EQ(s.banana[2], 300);       // (2A+B)/P^2
  EXPECT_EQ(s.banana[3], 4);         // (3A+B)/P^3 — the paper's $4
}

TEST(Bootstrap, PaperMillionDollarClaim) {
  // §6: "With 1% premiums and $4 initial lock-up risk, 3 bootstrapping
  // rounds are enough to hedge a $1,000,000 swap."
  EXPECT_EQ(bootstrap_rounds_needed(1'000'000, 1'000'000, 100.0, 4), 3);
}

TEST(Bootstrap, RoundsGrowLogarithmically) {
  // Rounds needed ~ log_P((rA+B)/p): multiplying the swap size by P adds
  // one round, plus occasionally one more from the linear rA term.
  const int r1 = bootstrap_rounds_needed(10'000, 10'000, 10.0, 5);
  const int r2 = bootstrap_rounds_needed(100'000, 100'000, 10.0, 5);
  const int r3 = bootstrap_rounds_needed(1'000'000, 1'000'000, 10.0, 5);
  EXPECT_LT(r1, r2);
  EXPECT_LT(r2, r3);
  EXPECT_LE(r3 - r1, 4);  // logarithmic, not linear, in swap size
  // A 100x larger swap at P=10 needs only ~2 more rounds.
  EXPECT_LE(r3, r1 + 2 * 2);
}

TEST(Bootstrap, ZeroRoundsIsUnhedgedPrincipal) {
  const auto s = bootstrap_schedule(500, 300, 100.0, 0);
  EXPECT_EQ(s.initial_risk_apricot(), 500);
  EXPECT_EQ(s.initial_risk_banana(), 300);
}

TEST(Bootstrap, RejectsBadFactor) {
  EXPECT_THROW(bootstrap_schedule(100, 100, 1.0, 2), std::invalid_argument);
  EXPECT_THROW(bootstrap_schedule(100, 100, 0.5, 2), std::invalid_argument);
}

TEST(Bootstrap, PremiumsShrinkMonotonically) {
  const auto s = bootstrap_schedule(123'456, 654'321, 7.0, 6);
  for (int j = 1; j <= s.rounds; ++j) {
    EXPECT_LT(s.apricot[j], s.apricot[j - 1]);
    EXPECT_LT(s.banana[j], s.banana[j - 1]);
  }
}

}  // namespace
}  // namespace xchain::core
