// Fuzz-input format: the DeviationPlan::str() grammar parser, the dense
// decode/encode canonicalization mutation and shrinking operate on, and
// the corpus-file text form with its adapter-anchored normal form.

#include <gtest/gtest.h>

#include "fuzz/input.hpp"
#include "sim/registry.hpp"

namespace xchain::fuzz {
namespace {

using sim::DeviationPlan;

TEST(ParsePlan, RoundTripsEveryGrammarShape) {
  const char* forms[] = {
      "conform",        "halt@0",           "halt@3",
      "d0+1",           "d2+5",             "x1",
      "x0.d1+2",        "d0+1.d2+3.halt@4", "v3:conform",
      "v1:halt@2",      "v2:x0.d3+7",       "d1+1.x2.halt@5",
  };
  for (const char* f : forms) {
    EXPECT_EQ(parse_plan(f).str(), f) << f;
  }
}

TEST(ParsePlan, RejectsWhatStrCannotPrint) {
  const char* bad[] = {
      "",          "conform.halt@1",  // "conform" only stands alone
      "d0+0",                         // zero delay is Perform, never printed
      "d0-1",      "x-1",     "halt@-2",
      "halt@1.d0+1",                  // halt must come last
      "d0+1.d0+2",                    // duplicate ordinal
      "x0.x0",     "v0:conform",      // variant 0 is never prefixed
      "vx:conform", "d0+1junk", "hold@1", "plan", "d+1", "x",
  };
  for (const char* f : bad) {
    EXPECT_THROW(parse_plan(f), FuzzFormatError) << f;
  }
}

TEST(EncodePlan, TrailingDropsFoldIntoHalt) {
  // decode over 4 actions, drop the last two -> canonical halt@2.
  auto acts = decode_plan(DeviationPlan::conforming(), 4);
  acts[2] = {sim::ActionChoice::kDrop, 0};
  acts[3] = {sim::ActionChoice::kDrop, 0};
  EXPECT_EQ(encode_plan(acts, 0).str(), "halt@2");

  // An interior drop stays an x-mod.
  acts[3] = {sim::ActionChoice::kPerform, 0};
  EXPECT_EQ(encode_plan(acts, 0).str(), "x2");
}

TEST(CanonicalPlan, ClampsToActionCountAndKeepsVariant) {
  // Mods beyond the script length vanish; the variant survives.
  const DeviationPlan p =
      DeviationPlan::conforming().delayed(1, 2).delayed(7, 9).with_variant(2);
  EXPECT_EQ(canonical_plan(p, 3).str(), "v2:d1+2");
  // Fully out-of-range plans collapse to conform (variant kept).
  EXPECT_EQ(canonical_plan(DeviationPlan::conforming().delayed(5, 1), 2).str(),
            "conform");
}

TEST(FuzzInput, ParseStrRoundTrip) {
  const std::string text =
      "protocol two-party\n"
      "set delta=3\n"
      "set premium_a=4\n"
      "plan 0 d2+6\n"
      "plan 1 halt@2\n";
  const FuzzInput in = FuzzInput::parse(text);
  EXPECT_EQ(in.protocol, "two-party");
  ASSERT_EQ(in.overrides.size(), 2u);
  EXPECT_EQ(in.overrides[0].first, "delta");
  EXPECT_EQ(in.overrides[0].second, "3");
  ASSERT_EQ(in.plans.size(), 2u);
  EXPECT_EQ(in.plans[1].str(), "halt@2");
  EXPECT_EQ(in.str(), text);
}

TEST(FuzzInput, CommentsAndBlankLinesIgnoredConformingPlansElided) {
  const FuzzInput in = FuzzInput::parse(
      "# a comment\n\nprotocol broker\n\nplan 1 conform\nplan 2 x0\n");
  EXPECT_EQ(in.str(), "protocol broker\nplan 2 x0\n");
}

TEST(FuzzInput, MissingPlanMeansConforming) {
  const FuzzInput in = FuzzInput::parse("protocol two-party\nplan 1 halt@0\n");
  EXPECT_TRUE(in.plan_of(0).is_conforming());
  EXPECT_EQ(in.plan_of(1).str(), "halt@0");
  EXPECT_TRUE(in.plan_of(7).is_conforming());  // beyond plans.size()
}

TEST(FuzzInput, ParseErrors) {
  EXPECT_THROW(FuzzInput::parse(""), FuzzFormatError);  // no protocol line
  EXPECT_THROW(FuzzInput::parse("plan 0 halt@0\n"), FuzzFormatError);
  EXPECT_THROW(FuzzInput::parse("protocol a\nprotocol b\n"), FuzzFormatError);
  EXPECT_THROW(FuzzInput::parse("protocol a\nset deltaequals2\n"),
               FuzzFormatError);
  EXPECT_THROW(FuzzInput::parse("protocol a\nplan x conform\n"),
               FuzzFormatError);
  EXPECT_THROW(FuzzInput::parse("protocol a\nplan 0 conform\n"
                                "plan 0 halt@0\n"),
               FuzzFormatError);  // duplicate party
  EXPECT_THROW(FuzzInput::parse("protocol a\nfrobnicate 1\n"),
               FuzzFormatError);  // unknown directive
}

TEST(FuzzInput, ParamsAreSchemaChecked) {
  const sim::ParamSet schema = sim::ProtocolRegistry::global().defaults(
      "two-party");
  FuzzInput in = FuzzInput::parse("protocol two-party\nset delta=3\n");
  EXPECT_EQ(in.params(schema).get_int("delta"), 3);
  in.overrides = {{"no_such_key", "1"}};
  EXPECT_THROW(in.params(schema), sim::ParamError);
  in.overrides = {{"delta", "0"}};  // below the schema minimum
  EXPECT_THROW(in.params(schema), sim::ParamError);
}

TEST(CanonicalInput, DropsRestatedDefaultsAndNormalizesPlans) {
  const auto& reg = sim::ProtocolRegistry::global();
  const sim::ParamSet schema = reg.defaults("two-party");
  const auto adapter = reg.make("two-party");

  FuzzInput in = FuzzInput::parse(
      "protocol two-party\n"
      "set delta=2\n"       // restates the default: must disappear
      "set premium_b=3\n"   // a real override: must survive
      "plan 1 d9+4\n");     // beyond the 3-action script: must vanish
  const FuzzInput canon = canonical_input(in, *adapter, schema);
  EXPECT_EQ(canon.str(), "protocol two-party\nset premium_b=3\n");

  // Identical semantics in a different spelling canonicalize identically:
  // overrides in reverse order, an explicit conform, trailing drops.
  FuzzInput other = FuzzInput::parse(
      "protocol two-party\n"
      "set premium_b=3\n"
      "set delta=2\n"
      "plan 0 conform\n"
      "plan 1 x1.x2\n");  // trailing drops over 3 actions -> halt@1
  const FuzzInput canon2 = canonical_input(other, *adapter, schema);
  EXPECT_EQ(canon2.str(),
            "protocol two-party\nset premium_b=3\nplan 1 halt@1\n");
}

TEST(FuzzInput, FaultAndResilienceDirectivesRoundTrip) {
  const std::string text =
      "protocol two-party\n"
      "fault banana squeeze@4-10,cap=1,spam=2,fee=3\n"
      "fault * outage@5-5\n"
      "resilience fee-escalate\n"
      "plan 0 halt@1\n";
  const FuzzInput in = FuzzInput::parse(text);
  ASSERT_EQ(in.faults.entries.size(), 2u);
  EXPECT_EQ(in.faults.entries[0].first, "banana");
  EXPECT_EQ(in.faults.entries[1].first, "*");
  EXPECT_EQ(in.resilience.kind, chain::ResiliencePolicy::Kind::kFeeEscalate);
  EXPECT_TRUE(in.environment().active());
  EXPECT_EQ(in.str(), text);
}

TEST(FuzzInput, NaiveResilienceIsTheSilentDefault) {
  // "resilience naive" parses but prints nothing: the inactive policy has
  // exactly one spelling — absence — like every other default.
  const FuzzInput in =
      FuzzInput::parse("protocol two-party\nresilience naive\n");
  EXPECT_FALSE(in.environment().active());
  EXPECT_EQ(in.str(), "protocol two-party\n");
}

TEST(FuzzInput, FaultDirectiveErrors) {
  EXPECT_THROW(FuzzInput::parse("protocol a\nfault banana\n"),
               FuzzFormatError);  // clause missing
  EXPECT_THROW(FuzzInput::parse("protocol a\nfault banana frob@1-2\n"),
               FuzzFormatError);  // unknown clause kind
  EXPECT_THROW(
      FuzzInput::parse("protocol a\nfault b squeeze@1-2,cap=1,spam=0,fee=1\n"),
      FuzzFormatError);  // non-canonical spelling
  EXPECT_THROW(FuzzInput::parse("protocol a\nresilience burst\n"),
               FuzzFormatError);
  EXPECT_THROW(FuzzInput::parse("protocol a\nresilience naive\n"
                                "resilience rebroadcast\n"),
               FuzzFormatError);  // at most one resilience line
}

TEST(CanonicalInput, EnvironmentPassesThroughUnchanged) {
  const auto& reg = sim::ProtocolRegistry::global();
  const sim::ParamSet schema = reg.defaults("two-party");
  const auto adapter = reg.make("two-party");
  const FuzzInput in = FuzzInput::parse(
      "protocol two-party\n"
      "fault banana drop@0-3,p=250,seed=2\n"
      "resilience rebroadcast\n"
      "plan 1 x1.x2\n");
  const FuzzInput canon = canonical_input(in, *adapter, schema);
  EXPECT_EQ(canon.faults, in.faults);
  EXPECT_EQ(canon.resilience, in.resilience);
  EXPECT_EQ(canon.str(),
            "protocol two-party\n"
            "fault banana drop@0-3,p=250,seed=2\n"
            "resilience rebroadcast\n"
            "plan 1 halt@1\n");
}

TEST(ScheduleOf, PadsPlansAndLabelsLikeSweepReports) {
  const auto& reg = sim::ProtocolRegistry::global();
  const auto adapter = reg.make("broker");
  const FuzzInput in = FuzzInput::parse("protocol broker\nplan 2 x0\n");
  const sim::Schedule s = schedule_of(in, *adapter, "");
  ASSERT_EQ(s.plans.size(), 3u);
  EXPECT_TRUE(s.plans[0].is_conforming());
  EXPECT_EQ(s.plans[2].str(), "x0");
  EXPECT_EQ(s.label, "hedged-broker[conform,conform,x0]");
}

}  // namespace
}  // namespace xchain::fuzz
