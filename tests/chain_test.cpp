#include <gtest/gtest.h>

#include "chain/blockchain.hpp"

namespace xchain::chain {
namespace {

TEST(Ledger, MintAndBalance) {
  Ledger l;
  const Address a = Address::party(0);
  EXPECT_EQ(l.balance(a, "apricot"), 0);
  l.mint(a, "apricot", 50);
  EXPECT_EQ(l.balance(a, "apricot"), 50);
  l.mint(a, "apricot", 25);
  EXPECT_EQ(l.balance(a, "apricot"), 75);
}

TEST(Ledger, TransferMovesFunds) {
  Ledger l;
  const Address a = Address::party(0), b = Address::party(1);
  l.mint(a, "x", 10);
  EXPECT_TRUE(l.transfer(a, b, "x", 4));
  EXPECT_EQ(l.balance(a, "x"), 6);
  EXPECT_EQ(l.balance(b, "x"), 4);
}

TEST(Ledger, TransferRejectsInsufficient) {
  Ledger l;
  const Address a = Address::party(0), b = Address::party(1);
  l.mint(a, "x", 3);
  EXPECT_FALSE(l.transfer(a, b, "x", 4));
  EXPECT_EQ(l.balance(a, "x"), 3);
  EXPECT_EQ(l.balance(b, "x"), 0);
}

TEST(Ledger, TransferRejectsNegative) {
  Ledger l;
  const Address a = Address::party(0), b = Address::party(1);
  l.mint(a, "x", 3);
  EXPECT_FALSE(l.transfer(a, b, "x", -1));
}

TEST(Ledger, ZeroTransferIsNoopSuccess) {
  Ledger l;
  EXPECT_TRUE(l.transfer(Address::party(0), Address::party(1), "x", 0));
}

TEST(Ledger, DistinctSymbolsIndependent) {
  Ledger l;
  const Address a = Address::party(0);
  l.mint(a, "x", 5);
  EXPECT_EQ(l.balance(a, "y"), 0);
}

TEST(Ledger, HoldingsSortedAndNonzero) {
  Ledger l;
  l.mint(Address::party(1), "b", 2);
  l.mint(Address::party(0), "a", 1);
  l.mint(Address::contract(0), "c", 3);
  l.mint(Address::party(1), "z", 4);
  l.transfer(Address::party(1), Address::party(0), "z", 4);  // drains to 0
  const auto h = l.holdings();
  ASSERT_EQ(h.size(), 4u);  // the zero balance entry is dropped
  EXPECT_EQ(std::get<0>(h[0]), Address::party(0));
}

TEST(Address, Identity) {
  EXPECT_EQ(Address::party(3), Address::party(3));
  EXPECT_NE(Address::party(3), Address::contract(3));
  EXPECT_EQ(Address::party(3).str(), "party:3");
  EXPECT_EQ(Address::contract(7).str(), "contract:7");
}

// A trivial contract for framework tests: counts blocks and accepts
// deposits.
class CounterContract : public Contract {
 public:
  void deposit(TxContext& ctx, Amount amt) {
    if (ctx.ledger().transfer(Address::party(ctx.sender()), address(),
                              ctx.native(), amt)) {
      ctx.emit(id(), "deposit", std::to_string(amt));
      order.push_back(ctx.sender());
    }
  }
  void on_block(TxContext&) override { ++blocks; }

  int blocks = 0;
  std::vector<PartyId> order;
};

TEST(Blockchain, TxAppliedAtBlockProduction) {
  MultiChain chains;
  Blockchain& bc = chains.add_chain("test");
  bc.ledger_for_setup().mint(Address::party(0), bc.native(), 10);
  auto& c = bc.deploy<CounterContract>();

  bc.submit({0, "deposit", [&](TxContext& ctx) { c.deposit(ctx, 5); }});
  // Nothing moves until the block is produced.
  EXPECT_EQ(bc.ledger().balance(c.address(), bc.native()), 0);
  chains.produce_all(0);
  EXPECT_EQ(bc.ledger().balance(c.address(), bc.native()), 5);
  EXPECT_EQ(bc.height(), 0);
  EXPECT_EQ(bc.applied_tx_count(), 1u);
}

TEST(Blockchain, TxOrderPreserved) {
  MultiChain chains;
  Blockchain& bc = chains.add_chain("test");
  bc.ledger_for_setup().mint(Address::party(0), bc.native(), 10);
  bc.ledger_for_setup().mint(Address::party(1), bc.native(), 10);
  auto& c = bc.deploy<CounterContract>();
  bc.submit({1, "p1", [&](TxContext& ctx) { c.deposit(ctx, 1); }});
  bc.submit({0, "p0", [&](TxContext& ctx) { c.deposit(ctx, 1); }});
  chains.produce_all(0);
  EXPECT_EQ(c.order, (std::vector<PartyId>{1, 0}));
}

TEST(Blockchain, OnBlockRunsEveryBlock) {
  MultiChain chains;
  Blockchain& bc = chains.add_chain("test");
  auto& c = bc.deploy<CounterContract>();
  for (Tick t = 0; t < 5; ++t) chains.produce_all(t);
  EXPECT_EQ(c.blocks, 5);
  EXPECT_EQ(bc.height(), 4);
}

TEST(Blockchain, EventsRecorded) {
  MultiChain chains;
  Blockchain& bc = chains.add_chain("test");
  bc.ledger_for_setup().mint(Address::party(0), bc.native(), 10);
  auto& c = bc.deploy<CounterContract>();
  bc.submit({0, "d", [&](TxContext& ctx) { c.deposit(ctx, 2); }});
  chains.produce_all(0);
  ASSERT_EQ(bc.events().size(), 1u);
  EXPECT_EQ(bc.events()[0].kind, "deposit");
  EXPECT_EQ(bc.events()[0].tick, 0);
  EXPECT_FALSE(bc.events()[0].str().empty());
}

TEST(MultiChain, ChainsAreIndependent) {
  MultiChain chains;
  Blockchain& a = chains.add_chain("alpha");
  Blockchain& b = chains.add_chain("beta");
  EXPECT_EQ(a.id(), 0u);
  EXPECT_EQ(b.id(), 1u);
  EXPECT_EQ(a.native(), "alpha-coin");
  EXPECT_EQ(b.native(), "beta-coin");
  a.ledger_for_setup().mint(Address::party(0), "alpha-coin", 5);
  EXPECT_EQ(b.ledger().balance(Address::party(0), "alpha-coin"), 0);
}

TEST(MultiChain, AllEventsMergedSorted) {
  MultiChain chains;
  Blockchain& a = chains.add_chain("alpha");
  Blockchain& b = chains.add_chain("beta");
  auto& ca = a.deploy<CounterContract>();
  auto& cb = b.deploy<CounterContract>();
  a.ledger_for_setup().mint(Address::party(0), a.native(), 10);
  b.ledger_for_setup().mint(Address::party(0), b.native(), 10);
  chains.produce_all(0);
  b.submit({0, "d", [&](TxContext& ctx) { cb.deposit(ctx, 1); }});
  chains.produce_all(1);
  a.submit({0, "d", [&](TxContext& ctx) { ca.deposit(ctx, 1); }});
  chains.produce_all(2);
  const auto events = chains.all_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].tick, 1);
  EXPECT_EQ(events[0].chain, 1u);
  EXPECT_EQ(events[1].tick, 2);
  EXPECT_EQ(events[1].chain, 0u);
}

}  // namespace
}  // namespace xchain::chain
