// Shared-chain load generator (src/load/load_gen.hpp) and the
// instance-namespacing layer under it (core/binding.hpp bound worlds).
//
// Pinned here:
//   * namespacing — two instances bound to one shared MultiChain at
//     disjoint account bases produce exactly the payoffs of a private
//     solo world: ledger rows never bleed across instances;
//   * determinism — the LoadReport is identical at any thread count
//     (modulo wall time) and for repeated runs of one seed;
//   * the audit contract — an uncongested load is violation-free, and a
//     congested one attributes every violation to the chain faults
//     (unattributed == 0, the xchain-bench gate).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "chain/blockchain.hpp"
#include "core/binding.hpp"
#include "load/load_gen.hpp"
#include "sim/party.hpp"
#include "sim/registry.hpp"
#include "sim/scenario.hpp"

namespace xchain {
namespace {

sim::Schedule conforming(std::size_t parties) {
  sim::Schedule s;
  s.plans.assign(parties, sim::DeviationPlan::conforming());
  s.label = "conform";
  return s;
}

/// Drives bound instances on a shared MultiChain to completion, the same
/// tick discipline as the load loop (tick -> drain -> produce).
void drive(chain::MultiChain& chains,
           std::vector<sim::LoadInstance*> instances,
           std::vector<sim::TxSink*> sinks) {
  Tick end = 0;
  for (const sim::LoadInstance* inst : instances) {
    end = std::max(end, inst->end_tick());
  }
  for (Tick now = 0; now < end; ++now) {
    for (std::size_t i = 0; i < instances.size(); ++i) {
      for (sim::Party* actor : instances[i]->actors()) {
        actor->tick(chains, now);
      }
    }
    for (sim::TxSink* sink : sinks) sink->drain();
    chains.produce_all(now);
  }
}

TEST(LoadInstanceNamespacing, TwoInstancesMatchSoloPayoffs) {
  const sim::ProtocolRegistry& reg = sim::ProtocolRegistry::global();
  const auto adapter = reg.make("two-party");

  // Reference: one conforming run on a private world.
  const std::vector<sim::PartyOutcome> solo = adapter->run(conforming(2));

  // Two instances sharing one MultiChain at disjoint account bases.
  chain::MultiChain chains;
  chains.set_trace(chain::TraceMode::kOff);
  core::WorldBinding b0;
  b0.chains = &chains;
  b0.party_base = 0;
  b0.tag = "two-party#0";
  core::WorldBinding b1;
  b1.chains = &chains;
  b1.party_base = 2;
  b1.tag = "two-party#1";
  const auto i0 = adapter->bind_instance(b0);
  const auto i1 = adapter->bind_instance(b1);

  sim::TxSink s0, s1;
  for (sim::Party* p : i0->actors()) p->set_tx_sink(&s0);
  for (sim::Party* p : i1->actors()) p->set_tx_sink(&s1);
  drive(chains, {i0.get(), i1.get()}, {&s0, &s1});

  // Both instances complete with exactly the solo payoffs — a shared
  // ledger row would show up as a by_symbol / coin_delta difference.
  for (const auto& bound : {i0->collect(), i1->collect()}) {
    ASSERT_EQ(bound.size(), solo.size());
    for (std::size_t p = 0; p < solo.size(); ++p) {
      EXPECT_EQ(bound[p].name, solo[p].name);
      EXPECT_EQ(bound[p].payoff.coin_delta, solo[p].payoff.coin_delta);
      EXPECT_EQ(bound[p].payoff.value_delta, solo[p].payoff.value_delta);
      EXPECT_EQ(bound[p].payoff.by_symbol, solo[p].payoff.by_symbol);
    }
  }
}

TEST(LoadInstanceNamespacing, StaggeredArrivalMatchesSoloPayoffs) {
  const sim::ProtocolRegistry& reg = sim::ProtocolRegistry::global();
  const auto adapter = reg.make("broker");
  const std::vector<sim::PartyOutcome> solo = adapter->run(conforming(3));

  // The second instance arrives mid-run (start = 5): its deadline ladder
  // is offset, its endowments are minted on live chains.
  chain::MultiChain chains;
  chains.set_trace(chain::TraceMode::kOff);
  core::WorldBinding b0;
  b0.chains = &chains;
  b0.party_base = 0;
  b0.tag = "broker#0";
  core::WorldBinding b1;
  b1.chains = &chains;
  b1.party_base = 3;
  b1.start = 5;
  b1.tag = "broker#1";
  const auto i0 = adapter->bind_instance(b0);
  sim::TxSink s0, s1;
  for (sim::Party* p : i0->actors()) p->set_tx_sink(&s0);

  std::unique_ptr<sim::LoadInstance> i1;
  Tick end = i0->end_tick();
  for (Tick now = 0; now < end; ++now) {
    if (now == 5) {
      i1 = adapter->bind_instance(b1);
      for (sim::Party* p : i1->actors()) p->set_tx_sink(&s1);
      end = std::max(end, i1->end_tick());
    }
    for (sim::Party* actor : i0->actors()) actor->tick(chains, now);
    if (i1) {
      for (sim::Party* actor : i1->actors()) actor->tick(chains, now);
    }
    s0.drain();
    s1.drain();
    chains.produce_all(now);
  }

  for (const auto& bound : {i0->collect(), i1->collect()}) {
    ASSERT_EQ(bound.size(), solo.size());
    for (std::size_t p = 0; p < solo.size(); ++p) {
      EXPECT_EQ(bound[p].payoff.by_symbol, solo[p].payoff.by_symbol)
          << bound[p].name;
    }
  }
}

TEST(LoadGenerator, UncongestedLoadIsViolationFree) {
  load::LoadConfig cfg;
  cfg.users = 60;
  cfg.seed = 11;
  cfg.block_capacity = 0;  // unbounded blocks: the reliable substrate
  cfg.mix = {{"two-party", 1}, {"broker", 1}, {"bridge-transfer", 1}};
  const load::LoadReport r = load::run_load(cfg);
  EXPECT_EQ(r.instances, 60u);
  EXPECT_TRUE(r.violations.empty())
      << r.violations.front().str();
  EXPECT_EQ(r.unattributed, 0u);
  std::size_t total = 0;
  for (const load::ProtocolStats& p : r.per_protocol) total += p.instances;
  EXPECT_EQ(total, 60u);
  EXPECT_GT(r.txs_included, 0u);
  EXPECT_GT(r.latency.p50, 0);
}

TEST(LoadGenerator, ReportIsThreadCountInvariant) {
  load::LoadConfig cfg;
  cfg.users = 200;
  cfg.seed = 3;
  cfg.block_capacity = 3;  // congested: fee escalation in play
  cfg.mix = {{"two-party", 2}, {"broker", 1}, {"bridge-transfer", 1}};

  cfg.threads = 1;
  const load::LoadReport serial = load::run_load(cfg);
  cfg.threads = 4;
  const load::LoadReport parallel = load::run_load(cfg);

  EXPECT_EQ(serial.instances, parallel.instances);
  EXPECT_EQ(serial.txs_included, parallel.txs_included);
  EXPECT_EQ(serial.chains, parallel.chains);
  EXPECT_EQ(serial.ticks, parallel.ticks);
  EXPECT_EQ(serial.latency.p50, parallel.latency.p50);
  EXPECT_EQ(serial.latency.p95, parallel.latency.p95);
  EXPECT_EQ(serial.latency.p99, parallel.latency.p99);
  EXPECT_EQ(serial.latency.max, parallel.latency.max);
  EXPECT_EQ(serial.latency.mean, parallel.latency.mean);
  ASSERT_EQ(serial.violations.size(), parallel.violations.size());
  for (std::size_t v = 0; v < serial.violations.size(); ++v) {
    EXPECT_EQ(serial.violations[v].schedule, parallel.violations[v].schedule);
    EXPECT_EQ(serial.violations[v].party, parallel.violations[v].party);
    EXPECT_EQ(serial.violations[v].coin_delta,
              parallel.violations[v].coin_delta);
  }
  ASSERT_EQ(serial.per_protocol.size(), parallel.per_protocol.size());
  for (std::size_t m = 0; m < serial.per_protocol.size(); ++m) {
    EXPECT_EQ(serial.per_protocol[m].txs_included,
              parallel.per_protocol[m].txs_included);
    EXPECT_EQ(serial.per_protocol[m].latency.p99,
              parallel.per_protocol[m].latency.p99);
  }
}

TEST(LoadGenerator, CongestedViolationsAllAttributed) {
  load::LoadConfig cfg;
  cfg.users = 150;
  cfg.seed = 5;
  cfg.arrival_gap = 0;  // every instance arrives at tick 0: worst case
  cfg.block_capacity = 2;
  cfg.mix = {{"two-party", 1}, {"broker", 1}};
  const load::LoadReport r = load::run_load(cfg);
  EXPECT_EQ(r.instances, 150u);
  // Congestion this brutal may breach floors — but every breach must
  // re-audit clean on the faultless twin (congestion-caused, never a
  // protocol bug).
  EXPECT_EQ(r.unattributed, 0u);
  EXPECT_EQ(r.fault_caused + r.unattributed, r.violations.size());
}

TEST(LoadGenerator, SameSeedSameReport) {
  load::LoadConfig cfg;
  cfg.users = 80;
  cfg.seed = 42;
  const load::LoadReport a = load::run_load(cfg);
  const load::LoadReport b = load::run_load(cfg);
  EXPECT_EQ(a.txs_included, b.txs_included);
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.latency.p99, b.latency.p99);
  EXPECT_EQ(a.violations.size(), b.violations.size());
}

TEST(LoadGenerator, RejectsBadConfigs) {
  load::LoadConfig cfg;
  cfg.users = 0;
  EXPECT_THROW(load::run_load(cfg), std::invalid_argument);
  cfg.users = 1;
  cfg.mix = {{"two-party", 0}};
  EXPECT_THROW(load::run_load(cfg), std::invalid_argument);
  cfg.mix = {{"no-such-protocol", 1}};
  EXPECT_THROW(load::run_load(cfg), sim::RegistryError);
  // Protocols without a bound-world form are rejected at bind time.
  cfg.mix = {{"auction-open", 1}};
  EXPECT_THROW(load::run_load(cfg), std::logic_error);
}

}  // namespace
}  // namespace xchain
