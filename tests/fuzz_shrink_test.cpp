// Delta-debugging shrinker: every found-form of the planted two-entry bug
// must minimize to the one pinned canonical reproducer, whatever noise the
// mutation path wrapped around it — and a bug that needs two cooperating
// plan entries must keep exactly those two.

#include <gtest/gtest.h>

#include "fuzz/selftest.hpp"
#include "fuzz/shrink.hpp"
#include "sim/registry.hpp"

namespace xchain::fuzz {
namespace {

FuzzInput trap_input(const std::string& body) {
  return FuzzInput::parse("protocol " + selftest_name() + "\n" + body);
}

class ShrinkTrap : public ::testing::Test {
 protected:
  FuzzTarget target_ = selftest_target();
  InstancePool pool_{target_};
};

TEST_F(ShrinkTrap, MinimizesToThePinnedCanonicalForm) {
  // The same planted bug dressed up the way different mutation paths
  // would find it: in-model victim noise (the audit only covers the
  // victim while they conform within Δ = 2), halts instead of drops,
  // delays riding along on the accomplices.
  const char* found_forms[] = {
      "plan 1 x0\nplan 2 halt@1\n",            // already minimal
      "plan 1 halt@0\nplan 2 halt@0\n",        // both halt everything
      "plan 0 d1+1\nplan 1 halt@0\nplan 2 halt@1\n",  // victim noise
      "plan 1 x0.d1+5\nplan 2 x1\n",           // delay riding along
      "plan 0 d0+1\nplan 1 x0\nplan 2 x0.x1\n",
      "plan 1 halt@0\nplan 2 x1\n",
  };
  for (const char* body : found_forms) {
    const ShrinkResult r = shrink_input(trap_input(body), pool_);
    EXPECT_EQ(r.minimized.str(), selftest_canonical_reproducer()) << body;
    EXPECT_FALSE(r.violation.empty()) << body;
  }
}

TEST_F(ShrinkTrap, KeepsBothCooperatingEntries) {
  // Neither accomplice's drop alone trips the trap, so the minimizer must
  // retain an entry for each even though its passes try to remove both.
  const ShrinkResult r =
      shrink_input(trap_input("plan 1 halt@0\nplan 2 halt@0\n"), pool_);
  EXPECT_FALSE(r.minimized.plan_of(1).is_conforming());
  EXPECT_FALSE(r.minimized.plan_of(2).is_conforming());
  EXPECT_GT(r.steps, 0u);
  EXPECT_GT(r.probes, r.steps);
}

TEST_F(ShrinkTrap, IsAFunctionOfTheInputAlone) {
  // No PRNG anywhere in the shrinker: same input, same everything.
  const FuzzInput in = trap_input("plan 0 d1+1\nplan 1 x0\nplan 2 halt@0\n");
  const ShrinkResult a = shrink_input(in, pool_);
  const ShrinkResult b = shrink_input(in, pool_);
  EXPECT_EQ(a.minimized.str(), b.minimized.str());
  EXPECT_EQ(a.violation, b.violation);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.probes, b.probes);
}

TEST_F(ShrinkTrap, RefusesCleanInputs) {
  EXPECT_THROW(shrink_input(trap_input("plan 1 x0\n"), pool_),
               std::invalid_argument);
  EXPECT_THROW(shrink_input(trap_input(""), pool_), std::invalid_argument);
}

TEST(ShrinkOverrides, IrrelevantParameterOverridesAreRemoved) {
  // The trap target dressed with a schema knob the bug ignores: the
  // override-removal pass must strip it, leaving the same pinned form.
  FuzzTarget t = selftest_target();
  t.schema = sim::ParamSet({sim::ParamSpec::integer(
      "knob", 5, "does nothing; here to be shrunk away")});
  InstancePool pool(t);
  const FuzzInput in = FuzzInput::parse(
      "protocol " + selftest_name() +
      "\nset knob=9\nplan 1 halt@0\nplan 2 halt@0\n");
  const ShrinkResult r = shrink_input(in, pool);
  EXPECT_EQ(r.minimized.str(), selftest_canonical_reproducer());
  EXPECT_TRUE(r.minimized.overrides.empty());
}

TEST(ShrinkRegistry, RefusesCleanRegistryInputs) {
  // two-party at defaults has no violating schedule (the sweeps and the
  // fuzz soak both verify that), so a shrink request for any clean input
  // is a harness bug the shrinker surfaces loudly.
  FuzzTarget t = FuzzTarget::from_registry("two-party");
  InstancePool pool(t);
  const FuzzInput in = FuzzInput::parse(
      "protocol two-party\nset premium_a=3\nplan 1 halt@1\n");
  EXPECT_THROW(shrink_input(in, pool), std::invalid_argument);
}

}  // namespace
}  // namespace xchain::fuzz
