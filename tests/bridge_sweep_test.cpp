// Sweep-level acceptance pins for the witness-bridge family: both
// registered variants sweep clean over the full halt-only and late-delay
// strategy spaces, the unhedged baseline demonstrably breaches the
// payoff floor under witness stalls, bridge sweeps are bit-identical
// serial vs sharded and tree vs brute (transfer path), and the
// quorum-signed claim path composes with attestation-chain squeezes —
// fee-escalating witnesses keep the envelope, naive ones breach with
// [chain-fault] attribution.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chain/fault.hpp"
#include "core/bridge.hpp"
#include "sim/registry.hpp"
#include "sim/scenario.hpp"

namespace xchain::sim {
namespace {

std::unique_ptr<ProtocolAdapter> make_ref(const std::string& name) {
  return ProtocolRegistry::global().make(name);
}

const std::vector<std::string>& bridge_names() {
  static const std::vector<std::string> names = {"bridge-transfer",
                                                 "bridge-account-create"};
  return names;
}

void expect_identical(const SweepReport& a, const SweepReport& b) {
  EXPECT_EQ(b.protocol, a.protocol);
  EXPECT_EQ(b.schedules_run, a.schedules_run);
  EXPECT_EQ(b.conforming_audited, a.conforming_audited);
  EXPECT_EQ(b.truncations, a.truncations);
  ASSERT_EQ(b.violations.size(), a.violations.size());
  for (std::size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(b.violations[i].schedule, a.violations[i].schedule)
        << "violation " << i << " out of order";
    EXPECT_EQ(b.violations[i].party, a.violations[i].party);
    EXPECT_EQ(b.violations[i].coin_delta, a.violations[i].coin_delta);
    EXPECT_EQ(b.violations[i].required_min, a.violations[i].required_min);
  }
}

// ---------------------------------------------------------------------------
// Full strategy spaces sweep clean for both hedged variants
// ---------------------------------------------------------------------------

TEST(BridgeSweep, HaltOnlySpaceSweepsClean) {
  for (const std::string& name : bridge_names()) {
    SCOPED_TRACE(name);
    const auto adapter = make_ref(name);
    const SweepReport report = ScenarioRunner(*adapter).sweep();
    EXPECT_TRUE(report.ok()) << report.str();
    EXPECT_GT(report.conforming_audited, 0u);
    // 4 parties, user with 3 (transfer) or 2 (account-create) ordinals,
    // witnesses with 3: (ordinals+1) halts + conform per party.
    EXPECT_EQ(report.schedules_run,
              name == "bridge-transfer" ? 256u : 192u);
  }
}

TEST(BridgeSweep, LateDelaySpaceSweepsClean) {
  // The acceptance bar from the issue: the full late-delay space — delays
  // of D-1, D, and 2D ticks plus selective drops, over the user AND all
  // witnesses — stays violation-free for the hedged defaults.
  for (const std::string& name : bridge_names()) {
    SCOPED_TRACE(name);
    const auto adapter = make_ref(name);
    SweepOptions opts;
    opts.strategies.kind = StrategySpace::Kind::kLateDelays;
    const SweepReport report = ScenarioRunner(*adapter).sweep(opts);
    EXPECT_TRUE(report.ok()) << report.str();
    EXPECT_GT(report.schedules_run, 10000u);
  }
}

// ---------------------------------------------------------------------------
// The unhedged baseline breaches exactly where the hedge pays out
// ---------------------------------------------------------------------------

TEST(BridgeSweep, UnhedgedBaselineBreachesUnderWitnessStall) {
  // premium_unit=0 is unreachable through the registry schema (>= 1) by
  // design — the fuzzer must not wander into the known-broken baseline —
  // so the breach is pinned on a directly-constructed adapter: the same
  // halt-only space that sweeps clean hedged produces conforming-user
  // floor violations unhedged, none of them chain-fault attributable.
  core::BridgeConfig cfg;
  cfg.premium_unit = 0;
  const BridgeAdapter adapter(cfg);
  const SweepReport report = ScenarioRunner(adapter).sweep();
  EXPECT_FALSE(report.ok());
  bool user_breached = false;
  for (const Violation& v : report.violations) {
    EXPECT_FALSE(v.fault_caused) << v.str();
    if (v.party == "user" && v.coin_delta < 0) user_breached = true;
  }
  EXPECT_TRUE(user_breached)
      << "expected a conforming user below the floor: " << report.str();
}

// ---------------------------------------------------------------------------
// Executor equivalences
// ---------------------------------------------------------------------------

TEST(BridgeSweep, SerialMatchesShardedOnBothVariants) {
  for (const std::string& name : bridge_names()) {
    const auto adapter = make_ref(name);
    ScenarioRunner runner(*adapter);
    const SweepReport serial = runner.sweep();
    for (const unsigned threads : {2u, 4u, 8u}) {
      SCOPED_TRACE(name + " @ " + std::to_string(threads) + " threads");
      SweepOptions opts;
      opts.threads = threads;
      expect_identical(serial, runner.sweep(opts));
    }
  }
}

TEST(BridgeSweep, TreeMatchesBruteOnTransferPath) {
  const auto adapter = make_ref("bridge-transfer");
  ScenarioRunner runner(*adapter);
  SweepOptions brute;
  brute.executor = SweepExecutor::kBrute;
  SweepOptions tree;
  tree.executor = SweepExecutor::kTree;
  const SweepReport b = runner.sweep(brute);
  const SweepReport t = runner.sweep(tree);
  expect_identical(b, t);
  // The tree executor actually shares prefixes: fewer world executions
  // than schedules, every schedule still covered.
  EXPECT_LT(t.nodes_executed, t.schedules_run);
  EXPECT_EQ(t.nodes_executed + t.dedup_hits, t.schedules_run);
}

TEST(BridgeSweep, AccountCreatePathIsBruteOnly) {
  // Account-create pays rewards through the door at settle; its adapter
  // declares no tree capability, and forcing the tree executor must be a
  // descriptive error, not UB.
  const auto adapter = make_ref("bridge-account-create");
  SweepOptions tree;
  tree.executor = SweepExecutor::kTree;
  EXPECT_THROW(ScenarioRunner(*adapter).sweep(tree), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Composition with the chain-fault substrate
// ---------------------------------------------------------------------------

chain::ChainEnvironment attestation_squeeze(const std::string& resilience) {
  // Fee-1 spam crowds the issuing chain's cap-1 blocks through the whole
  // attestation window (ticks 3..8 at delta=2).
  return {chain::FaultPlan::parse("issuing:squeeze@3-8,cap=1,spam=2,fee=1"),
          chain::ResiliencePolicy::parse(resilience)};
}

TEST(BridgeFaults, NaiveWitnessesBreachUnderAttestationSqueezeAttributed) {
  // Everyone conforms, but naive fee-0 attestations never outbid the
  // spam: the quorum starves, the claim fails, and the bonded witnesses
  // cannot report an attestation that never landed — their bonds
  // forfeit. The faultless twin runs clean, so every violation carries
  // the [chain-fault] attribution instead of blaming the witnesses.
  const auto adapter = make_ref("bridge-transfer");
  ASSERT_TRUE(
      attestation_squeeze("naive").faults.within_tolerance(adapter->delta()));
  adapter->set_environment(attestation_squeeze("naive"));
  SweepOptions opts;
  opts.max_deviators = 0;
  const SweepReport report = ScenarioRunner(*adapter).sweep(opts);
  EXPECT_EQ(report.schedules_run, 1u);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.fault_caused, report.violations.size());
  for (const Violation& v : report.violations) {
    EXPECT_TRUE(v.fault_caused) << v.str();
    EXPECT_NE(v.str().find("[chain-fault]"), std::string::npos) << v.str();
  }
}

TEST(BridgeFaults, FeeEscalatingWitnessesKeepTheEnvelope) {
  // Same within-envelope squeeze, adequate policy: escalated attestation
  // fees land the k-of-n quorum (and the own-vote-final settle reports)
  // before the inclusive deadlines lapse — across the full halt-only
  // deviation sweep, not just the all-conforming schedule.
  const auto adapter = make_ref("bridge-transfer");
  adapter->set_environment(attestation_squeeze("fee-escalate"));
  const SweepReport report = ScenarioRunner(*adapter).sweep();
  EXPECT_EQ(report.schedules_run, 256u);
  EXPECT_TRUE(report.ok()) << report.str();
  EXPECT_EQ(report.fault_caused, 0u);
}

}  // namespace
}  // namespace xchain::sim
