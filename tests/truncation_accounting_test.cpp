// Exact accounting for strategy-space truncation: the per-party plan cap,
// the whole-sweep schedule budget, and their interaction must trim to
// pinned sizes and report pinned notices. The two-party swap at its
// registry defaults (delta = 2, 3 action ordinals per party) makes the
// arithmetic exact: the late-delays menu is {1, 2, 4}, so each party's
// uncapped plan space is (3 + 2)^3 = 125 plans.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/registry.hpp"
#include "sim/scenario.hpp"

namespace xchain::sim {
namespace {

// The notice format pinned by these tests (built in scenario.cpp's
// ScheduleSpace): adapter label ("hedged-two-party", not the registry
// key), space name, per-party swept/full sizes, and BOTH configured caps
// so a reader can tell which bound bit.
std::string notice(std::size_t party, std::size_t swept, std::size_t full,
                   std::size_t plan_cap, std::size_t schedule_budget) {
  return "hedged-two-party: strategy space 'late-delays' truncated: party " +
         std::to_string(party) + " sweeping " + std::to_string(swept) +
         " of " + std::to_string(full) + " plans (caps: " +
         std::to_string(plan_cap) + " plans/party, " +
         std::to_string(schedule_budget) + " schedules)";
}

SweepOptions late_delays(std::size_t plan_cap, std::size_t schedule_budget) {
  SweepOptions opts;
  opts.strategies.kind = StrategySpace::Kind::kLateDelays;
  opts.strategies.max_plans_per_party = plan_cap;
  opts.strategies.max_schedules = schedule_budget;
  return opts;
}

TEST(TruncationAccounting, PlanCapTrimsEachPartyList) {
  const auto adapter = ProtocolRegistry::global().make("two-party");
  ScenarioRunner runner(*adapter);
  const SweepReport report = runner.sweep(late_delays(10, 20000));
  // 10 plans per party survive the cap; 10 * 10 = 100 fits the budget.
  EXPECT_EQ(report.schedules_run, 100u);
  const std::vector<std::string> want = {notice(0, 10, 125, 10, 20000),
                                         notice(1, 10, 125, 10, 20000)};
  EXPECT_EQ(report.truncations, want);
}

TEST(TruncationAccounting, ScheduleBudgetTrimsToLargestUniformFit) {
  const auto adapter = ProtocolRegistry::global().make("two-party");
  ScenarioRunner runner(*adapter);
  // Default 64-plan cap leaves 64 plans/party; a 100-schedule budget trims
  // both lists to 10 (10^2 = 100 fits, 11^2 = 121 does not).
  const SweepReport report = runner.sweep(late_delays(64, 100));
  EXPECT_EQ(report.schedules_run, 100u);
  const std::vector<std::string> want = {notice(0, 10, 125, 64, 100),
                                         notice(1, 10, 125, 64, 100)};
  EXPECT_EQ(report.truncations, want);
}

TEST(TruncationAccounting, CapAndBudgetInteract) {
  const auto adapter = ProtocolRegistry::global().make("two-party");
  ScenarioRunner runner(*adapter);
  // The 12-plan cap applies first (125 -> 12), then the budget trims the
  // capped lists (12 -> 10). The notice names both caps and the ORIGINAL
  // 125-plan space, so truncation severity is never understated.
  const SweepReport report = runner.sweep(late_delays(12, 100));
  EXPECT_EQ(report.schedules_run, 100u);
  const std::vector<std::string> want = {notice(0, 10, 125, 12, 100),
                                         notice(1, 10, 125, 12, 100)};
  EXPECT_EQ(report.truncations, want);
}

TEST(TruncationAccounting, BudgetOfOneDegradesToConformingBaseline) {
  const auto adapter = ProtocolRegistry::global().make("two-party");
  ScenarioRunner runner(*adapter);
  // Uniform trimming floors at one plan per party, and each party's list
  // puts the conforming plan first — so the single surviving schedule is
  // the all-conform baseline, audited clean.
  const SweepReport report = runner.sweep(late_delays(64, 1));
  EXPECT_EQ(report.schedules_run, 1u);
  EXPECT_EQ(report.conforming_audited, 2u);
  EXPECT_TRUE(report.violations.empty());
  const std::vector<std::string> want = {notice(0, 1, 125, 64, 1),
                                         notice(1, 1, 125, 64, 1)};
  EXPECT_EQ(report.truncations, want);
}

TEST(TruncationAccounting, ExactFitReportsNoTruncation) {
  const auto adapter = ProtocolRegistry::global().make("two-party");
  ScenarioRunner runner(*adapter);
  // Caps exactly as large as the space: 125 plans/party, 125^2 schedules.
  const SweepReport report = runner.sweep(late_delays(125, 15625));
  EXPECT_EQ(report.schedules_run, 15625u);
  EXPECT_TRUE(report.truncations.empty());
}

TEST(TruncationAccounting, HaltOnlyIsNeverTruncated) {
  const auto adapter = ProtocolRegistry::global().make("two-party");
  ScenarioRunner runner(*adapter);
  // Back-compat: halt-only spaces ignore both caps (the historical 16
  // two-party schedules sweep whole even under absurdly small bounds).
  SweepOptions opts;
  opts.strategies.max_plans_per_party = 2;
  opts.strategies.max_schedules = 5;
  const SweepReport report = runner.sweep(opts);
  EXPECT_EQ(report.schedules_run, 16u);
  EXPECT_TRUE(report.truncations.empty());
}

TEST(TruncationAccounting, DryRunCountMatchesSweepAndSharesNotices) {
  const auto adapter = ProtocolRegistry::global().make("two-party");
  ScenarioRunner runner(*adapter);
  const SweepOptions opts = late_delays(12, 100);
  std::vector<std::string> dry_truncations;
  const std::size_t count = runner.schedule_count(opts, &dry_truncations);
  const SweepReport report = runner.sweep(opts);
  EXPECT_EQ(count, report.schedules_run);
  EXPECT_EQ(dry_truncations, report.truncations);
}

}  // namespace
}  // namespace xchain::sim
