#include <gtest/gtest.h>

#include "core/broker.hpp"
#include "core/premiums.hpp"

namespace xchain::core {
namespace {

using sim::DeviationPlan;

BrokerConfig config() {
  BrokerConfig cfg;
  cfg.ticket_count = 10;
  cfg.sale_price = 101;
  cfg.purchase_price = 100;
  cfg.premium_unit = 1;
  cfg.delta = 1;
  return cfg;
}

DeviationPlan conform() { return DeviationPlan::conforming(); }

// ---------------------------------------------------------------------------
// §8.2 premium formula on the broker digraph (A=0, B=1, C=2).
// ---------------------------------------------------------------------------

TEST(BrokerPremiums, SingleRoundValues) {
  graph::Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(0, 2);
  g.add_arc(1, 0);
  g.add_arc(2, 0);
  const auto phases = broker_premiums(g, {{1, 0}, {2, 0}},
                                      {{{0, 2}, {0, 1}}}, 1);
  ASSERT_EQ(phases.size(), 2u);
  // T(A,B) = R_B(B) = 4, T(A,C) = R_C(C) = 4 (Equation 1 on this digraph).
  EXPECT_EQ(phases[1].at({0, 1}), 4);
  EXPECT_EQ(phases[1].at({0, 2}), 4);
  // E(B,A) = E(C,A) = T(A) = 8.
  EXPECT_EQ(phases[0].at({1, 0}), 8);
  EXPECT_EQ(phases[0].at({2, 0}), 8);
}

TEST(BrokerPremiums, MultiRoundChainsForward) {
  // Two trading rounds: escrow premium must cover round-1 premiums, which
  // cover round-2 premiums, which equal the leaders' redemption premiums.
  graph::Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(0, 2);
  g.add_arc(1, 0);
  g.add_arc(2, 0);
  const auto phases = broker_premiums(
      g, {{1, 0}}, {{{0, 2}}, {{2, 0}}}, 1);
  ASSERT_EQ(phases.size(), 3u);
  // Round 2: T_2(C,A) = R_A(A) = 4.
  EXPECT_EQ(phases[2].at({2, 0}), 4);
  // Round 1: T_1(A,C) = T_2(C) = 4.
  EXPECT_EQ(phases[1].at({0, 2}), 4);
  // Escrow: E(B,A) = T_1(A) = 4.
  EXPECT_EQ(phases[0].at({1, 0}), 4);
}

// ---------------------------------------------------------------------------
// Conforming run: the deal completes and Alice pockets the spread.
// ---------------------------------------------------------------------------

TEST(Broker, ConformingDealCompletes) {
  const auto r = run_broker_deal(config(), conform(), conform(), conform());
  EXPECT_TRUE(r.completed);
  // Premium flows all net to zero.
  EXPECT_EQ(r.alice.coin_delta, 0);
  EXPECT_EQ(r.bob.coin_delta, 0);
  EXPECT_EQ(r.carol.coin_delta, 0);
  // Assets: Bob sells 10 tickets for 100; Carol pays 101 for the tickets;
  // Alice nets the 1-coin spread without ever owning anything.
  EXPECT_EQ(r.bob.by_symbol.at("ticket"), -10);
  EXPECT_EQ(r.bob.by_symbol.at("coin"), 100);
  EXPECT_EQ(r.carol.by_symbol.at("ticket"), 10);
  EXPECT_EQ(r.carol.by_symbol.at("coin"), -101);
  EXPECT_EQ(r.alice.by_symbol.at("coin"), 1);
  EXPECT_EQ(r.bob_lockup, 0);
  EXPECT_EQ(r.carol_lockup, 0);
}

// ---------------------------------------------------------------------------
// §8.2 deviation scenarios with exact premium flows (p = 1).
// Premiums: E(B,A)=E(C,A)=8, T(A,B)=T(A,C)=4; per-arc redemption deposits:
// 5 by A on each of (B,A),(C,A); 6 by B on (A,B); 6 by C on (A,C).
// ---------------------------------------------------------------------------

TEST(Broker, BobOmitsEscrowPaysAliceAndCarol) {
  // "If Bob omits B1 ... Bob pays a premium to Carol and to Alice."
  // Flows (p = 1): Bob forfeits E(B,A) = 8 to Alice and his 6 in
  // redemption deposits on (A,B); Alice pays T(A,C) = 4 to Carol, loses
  // the k_B/k_C slots on (B,A)/(C,A) (3 to Bob, 3 to Carol) but recovers
  // her k_A slots by a recovery release and collects Carol's withheld
  // k_C/k_B slots (5): A = 8-4-3-3+6+5 = +9; B = -8+3-6 = -11;
  // C = +4+3-5 = +2.
  const auto r = run_broker_deal(config(), conform(),
                                 DeviationPlan::halt_after(2), conform());
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.alice.coin_delta, 9);
  EXPECT_EQ(r.bob.coin_delta, -11);
  EXPECT_EQ(r.carol.coin_delta, 2);
  // Carol's coins were locked up and refunded; she is compensated.
  EXPECT_GT(r.carol_lockup, 0);
  EXPECT_EQ(r.carol.by_symbol.count("coin"), 0u);
}

TEST(Broker, AliceOmitsTradesPaysBoth) {
  // "If Alice omits A1 after Bob performs B1, she pays Carol a premium...
  // if she omits A2 after Carol performs C1, Alice pays Bob."
  // A: -4 - 4 - 5 - 5 + 6 + 6 = -6;  B: +4 + 5 - 6 = +3;  C likewise +3.
  const auto r = run_broker_deal(config(), DeviationPlan::halt_after(2),
                                 conform(), conform());
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.alice.coin_delta, -6);
  EXPECT_EQ(r.bob.coin_delta, 3);
  EXPECT_EQ(r.carol.coin_delta, 3);
  EXPECT_GT(r.bob_lockup, 0);
  EXPECT_GT(r.carol_lockup, 0);
}

TEST(Broker, AliceOmitsA3PaysBoth) {
  // "If she omits A3 after Bob and Carol complete B1, B2, C1, and C2, then
  // she pays premiums to both on their respective blockchains."
  // A: -5 - 5 + 2 + 2 = -6;  B: +5 - 2 = +3;  C: +5 - 2 = +3.
  const auto r = run_broker_deal(config(), DeviationPlan::halt_after(3),
                                 conform(), conform());
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.alice.coin_delta, -6);
  EXPECT_EQ(r.bob.coin_delta, 3);
  EXPECT_EQ(r.carol.coin_delta, 3);
  // The conditional trades unwound: assets back to their owners.
  EXPECT_EQ(r.bob.by_symbol.count("ticket"), 0u);
  EXPECT_EQ(r.carol.by_symbol.count("coin"), 0u);
}

TEST(Broker, CarolOmitsEscrowPaysAliceAndBob) {
  // Symmetric to Bob's omission.
  const auto r = run_broker_deal(config(), conform(), conform(),
                                 DeviationPlan::halt_after(2));
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.alice.coin_delta, 9);
  EXPECT_EQ(r.carol.coin_delta, -11);
  EXPECT_EQ(r.bob.coin_delta, 2);
  EXPECT_GT(r.bob_lockup, 0);
}

TEST(Broker, PremiumPhaseAbortCostsNothing) {
  // Alice never deposits trading premiums: everything upstream truncates.
  const auto r = run_broker_deal(config(), DeviationPlan::halt_after(0),
                                 conform(), conform());
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.alice.coin_delta, 0);
  EXPECT_EQ(r.bob.coin_delta, 0);
  EXPECT_EQ(r.carol.coin_delta, 0);
  EXPECT_EQ(r.bob_lockup, 0);
  EXPECT_EQ(r.carol_lockup, 0);
}

// ---------------------------------------------------------------------------
// Property sweep over all single-deviator plans.
// ---------------------------------------------------------------------------

class BrokerSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BrokerSweep, CompliantPartiesAreHedged) {
  const auto [deviator, halt] = GetParam();
  DeviationPlan plans[3] = {conform(), conform(), conform()};
  plans[deviator] = DeviationPlan::halt_after(halt);
  const auto r = run_broker_deal(config(), plans[0], plans[1], plans[2]);

  const PayoffDelta* payoffs[3] = {&r.alice, &r.bob, &r.carol};
  Amount total = 0;
  for (int v = 0; v < 3; ++v) {
    total += payoffs[v]->coin_delta;
    if (v == deviator) continue;
    EXPECT_GE(payoffs[v]->coin_delta, 0)
        << "deviator " << deviator << " halt@" << halt << " party " << v;
  }
  EXPECT_EQ(total, 0);
  // Locked-and-refunded compliant principals are compensated (hedged).
  if (deviator != 1 && r.bob_lockup > 0) {
    EXPECT_GT(r.bob.coin_delta, 0);
  }
  if (deviator != 2 && r.carol_lockup > 0) {
    EXPECT_GT(r.carol.coin_delta, 0);
  }
}

std::vector<std::tuple<int, int>> broker_cases() {
  std::vector<std::tuple<int, int>> cases;
  for (int d = 0; d < 3; ++d) {
    for (int halt = 0; halt <= kBrokerActions; ++halt) {
      cases.emplace_back(d, halt);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Plans, BrokerSweep,
                         ::testing::ValuesIn(broker_cases()));

}  // namespace
}  // namespace xchain::core
