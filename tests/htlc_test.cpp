#include <gtest/gtest.h>

#include "chain/blockchain.hpp"
#include "contracts/htlc.hpp"
#include "crypto/secret.hpp"

namespace xchain::contracts {
namespace {

using chain::Address;
using chain::MultiChain;
using chain::TxContext;

constexpr PartyId kAlice = 0;
constexpr PartyId kBob = 1;

class HtlcFixture : public ::testing::Test {
 protected:
  HtlcFixture()
      : bc_(chains_.add_chain("apricot")),
        secret_(crypto::Secret::from_label("s")),
        htlc_(bc_.deploy<HtlcContract>(HtlcContract::Params{
            kAlice, kBob, "apricot", 100, secret_.hashlock(),
            /*escrow_deadline=*/2, /*timelock=*/6})) {
    bc_.ledger_for_setup().mint(Address::party(kAlice), "apricot", 100);
  }

  void fund_at(Tick t) {
    bc_.submit({kAlice, "fund", [&](TxContext& c) { htlc_.fund(c); }});
    chains_.produce_all(t);
  }
  void redeem_at(Tick t, crypto::Bytes preimage) {
    bc_.submit({kBob, "redeem", [this, p = std::move(preimage)](
                                    TxContext& c) { htlc_.redeem(c, p); }});
    chains_.produce_all(t);
  }
  void idle_until(Tick t) {
    for (Tick now = bc_.height() + 1; now <= t; ++now) {
      chains_.produce_all(now);
    }
  }

  MultiChain chains_;
  chain::Blockchain& bc_;
  crypto::Secret secret_;
  HtlcContract& htlc_;
};

TEST_F(HtlcFixture, FundThenRedeem) {
  fund_at(0);
  EXPECT_TRUE(htlc_.funded());
  EXPECT_EQ(bc_.ledger().balance(htlc_.address(), "apricot"), 100);

  redeem_at(1, secret_.value());
  EXPECT_TRUE(htlc_.redeemed());
  EXPECT_EQ(bc_.ledger().balance(Address::party(kBob), "apricot"), 100);
  ASSERT_TRUE(htlc_.revealed_preimage().has_value());
  EXPECT_EQ(*htlc_.revealed_preimage(), secret_.value());
}

TEST_F(HtlcFixture, RefundAfterTimelock) {
  fund_at(0);
  idle_until(7);  // timelock 6 inclusive; sweep at 7
  EXPECT_TRUE(htlc_.refunded());
  EXPECT_EQ(bc_.ledger().balance(Address::party(kAlice), "apricot"), 100);
  EXPECT_EQ(htlc_.resolved_at(), 7);
}

TEST_F(HtlcFixture, NoRefundBeforeTimelock) {
  fund_at(0);
  idle_until(6);
  EXPECT_FALSE(htlc_.refunded());
  EXPECT_TRUE(htlc_.funded());
}

TEST_F(HtlcFixture, RedeemAtTimelockBoundaryIsTimely) {
  fund_at(0);
  idle_until(5);
  redeem_at(6, secret_.value());  // height == timelock: timely (inclusive)
  EXPECT_TRUE(htlc_.redeemed());
}

TEST_F(HtlcFixture, LateRedeemRejectedThenRefunded) {
  fund_at(0);
  idle_until(6);
  redeem_at(7, secret_.value());  // late: rejected; refund sweep fires
  EXPECT_FALSE(htlc_.redeemed());
  EXPECT_TRUE(htlc_.refunded());
  EXPECT_EQ(bc_.ledger().balance(Address::party(kAlice), "apricot"), 100);
}

TEST_F(HtlcFixture, WrongPreimageRejected) {
  fund_at(0);
  redeem_at(1, crypto::Secret::from_label("wrong").value());
  EXPECT_FALSE(htlc_.redeemed());
  EXPECT_EQ(bc_.ledger().balance(Address::party(kBob), "apricot"), 0);
}

TEST_F(HtlcFixture, LateFundingRejected) {
  idle_until(2);
  fund_at(3);  // escrow deadline 2: too late
  EXPECT_FALSE(htlc_.funded());
  EXPECT_EQ(bc_.ledger().balance(Address::party(kAlice), "apricot"), 100);
}

TEST_F(HtlcFixture, NonFunderCannotFund) {
  bc_.submit({kBob, "fund", [&](TxContext& c) { htlc_.fund(c); }});
  chains_.produce_all(0);
  EXPECT_FALSE(htlc_.funded());
}

TEST_F(HtlcFixture, RedeemBeforeFundingIsNoop) {
  redeem_at(0, secret_.value());
  EXPECT_FALSE(htlc_.redeemed());
}

TEST_F(HtlcFixture, DoubleFundIgnored) {
  fund_at(0);
  bc_.submit({kAlice, "fund", [&](TxContext& c) { htlc_.fund(c); }});
  chains_.produce_all(1);
  EXPECT_EQ(bc_.ledger().balance(htlc_.address(), "apricot"), 100);
}

TEST_F(HtlcFixture, DoubleRedeemPaysOnce) {
  fund_at(0);
  redeem_at(1, secret_.value());
  redeem_at(2, secret_.value());
  EXPECT_EQ(bc_.ledger().balance(Address::party(kBob), "apricot"), 100);
}

TEST(Htlc, InsufficientBalanceFundRejected) {
  MultiChain chains;
  auto& bc = chains.add_chain("apricot");
  const auto s = crypto::Secret::from_label("s");
  auto& htlc = bc.deploy<HtlcContract>(HtlcContract::Params{
      kAlice, kBob, "apricot", 100, s.hashlock(), 2, 6});
  bc.ledger_for_setup().mint(Address::party(kAlice), "apricot", 50);
  bc.submit({kAlice, "fund", [&](TxContext& c) { htlc.fund(c); }});
  chains.produce_all(0);
  EXPECT_FALSE(htlc.funded());
  EXPECT_EQ(bc.ledger().balance(Address::party(kAlice), "apricot"), 50);
}

}  // namespace
}  // namespace xchain::contracts
