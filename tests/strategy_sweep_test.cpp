// Strategy-space sweeps, end to end:
//  * halt-only mode reproduces the historical 1107-schedule reference
//    reports BYTE-IDENTICALLY (pinned strings — campaign and CLI output
//    are built from SweepReport::line(), so this is the back-compat
//    contract);
//  * timely-delays (last-moment-but-compliant lateness) must sweep clean,
//    and a timely-delayed conforming counterparty is never flagged;
//  * late-delays (delays at and past the synchrony bound, plus selective
//    drops) audits thousands of new timing schedules across every
//    registry protocol with zero hedging-bound violations;
//  * the unhedged baselines breach the hedged floor under LATE-DELAY
//    schedules, not just under halts — the timing-griefing axis has teeth;
//  * violation labels render the full policy (delays included).

#include <gtest/gtest.h>

#include <iterator>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/broker.hpp"
#include "core/two_party.hpp"
#include "sim/campaign.hpp"
#include "sim/reference_configs.hpp"
#include "sim/registry.hpp"
#include "sim/scenario.hpp"

namespace xchain::sim {
namespace {

std::vector<std::unique_ptr<ProtocolAdapter>> reference_adapters() {
  const ProtocolRegistry& reg = ProtocolRegistry::global();
  std::vector<std::unique_ptr<ProtocolAdapter>> out;
  out.push_back(reg.make("two-party"));
  out.push_back(reg.make("multi-party-fig3a"));
  ParamSet ring = reg.defaults("multi-party-ring");
  ring.set("n", "4");
  out.push_back(reg.make("multi-party-ring", ring));
  out.push_back(reg.make("auction-open"));
  out.push_back(reg.make("auction-sealed"));
  out.push_back(reg.make("broker"));
  out.push_back(reg.make("bootstrap"));
  out.push_back(reg.make("crr-ladder"));
  return out;
}

SweepOptions with_strategies(StrategySpace::Kind kind) {
  SweepOptions opts;
  opts.strategies.kind = kind;
  return opts;
}

// ---------------------------------------------------------------------------
// Back-compat: the halt-only reports, byte for byte.
// ---------------------------------------------------------------------------

TEST(StrategySweep, HaltOnlyReproducesTheReferenceReportsByteIdentically) {
  const char* kPinned[] = {
      "hedged-two-party: 16 schedules, 8 conforming-party audits, "
      "0 violations",
      "hedged-multi-party-n3: 125 schedules, 75 conforming-party audits, "
      "0 violations",
      "hedged-multi-party-n4: 625 schedules, 500 conforming-party audits, "
      "0 violations",
      "ticket-auction: 63 schedules, 51 conforming-party audits, "
      "0 violations",
      "sealed-ticket-auction: 112 schedules, 72 conforming-party audits, "
      "0 violations",
      "hedged-broker: 125 schedules, 75 conforming-party audits, "
      "0 violations",
      "bootstrap-ladder-r2: 25 schedules, 10 conforming-party audits, "
      "0 violations",
      "crr-ladder: 16 schedules, 8 conforming-party audits, 0 violations",
  };
  const auto adapters = reference_adapters();
  ASSERT_EQ(adapters.size(), std::size(kPinned));
  std::size_t total = 0;
  for (std::size_t i = 0; i < adapters.size(); ++i) {
    const SweepReport report = ScenarioRunner(*adapters[i]).sweep();
    EXPECT_EQ(report.line(), kPinned[i]);
    EXPECT_TRUE(report.truncations.empty())
        << "halt-only sweeps are never truncated";
    total += report.schedules_run;
  }
  EXPECT_EQ(total, 1107u);
}

TEST(StrategySweep, SweepReportLineFormatIsPinned) {
  SweepReport r;
  r.protocol = "demo";
  r.schedules_run = 12;
  r.conforming_audited = 7;
  r.violations.resize(1);
  EXPECT_EQ(r.line(),
            "demo: 12 schedules, 7 conforming-party audits, 1 violations");
}

// ---------------------------------------------------------------------------
// Timely delays: still conforming, still clean, still audited.
// ---------------------------------------------------------------------------

TEST(StrategySweep, TimelyDelaysSweepCleanOnEveryReferenceAdapter) {
  const SweepOptions opts = with_strategies(StrategySpace::Kind::kTimelyDelays);
  std::size_t total = 0;
  for (const auto& adapter : reference_adapters()) {
    const SweepReport report = ScenarioRunner(*adapter).sweep(opts);
    SCOPED_TRACE(adapter->name());
    EXPECT_TRUE(report.ok()) << report.str();
    total += report.schedules_run;
  }
  EXPECT_GE(total, 3 * 1107u)
      << "the timely space alone should be >= 3x the halt-only space";
}

TEST(StrategySweep, TimelyDelayedConformingCounterpartyIsNeverFlagged) {
  // A timely delay (delta - 1 ticks) keeps the party CONFORMING: it is
  // still audited against its hedged floor — more conforming audits than
  // the halt-only space, zero violations. If the adapter ever classified
  // timely-delayed parties as deviators, the audit count would collapse
  // back; if the protocol ever mistreated them, a violation would name
  // them. Both stay pinned here on the two-party swap, where every
  // schedule and party is easy to account for: 27 plans per party (conform
  // + 3 halts + 23 delay/drop combinations), 8 of them conforming (conform
  // + the 7 pure timely-delay combinations over 3 ordinals).
  const auto adapter = ProtocolRegistry::global().make("two-party");
  const SweepReport report = ScenarioRunner(*adapter).sweep(
      with_strategies(StrategySpace::Kind::kTimelyDelays));
  EXPECT_EQ(report.schedules_run, 729u);  // 27^2
  EXPECT_TRUE(report.ok()) << report.str();
  // Each of the 27 counterparty plans meets 8 conforming plans of the
  // other party: 2 * 8 * 27 = 432 conforming-party audits.
  EXPECT_EQ(report.conforming_audited, 432u);
}

// ---------------------------------------------------------------------------
// Late delays: timing-griefing swept across the whole registry.
// ---------------------------------------------------------------------------

TEST(StrategySweep, LateDelaySpaceAuditsCleanAcrossAllRegistryProtocols) {
  const SweepOptions opts = with_strategies(StrategySpace::Kind::kLateDelays);
  std::size_t total = 0;
  bool any_truncated = false;
  for (const auto& adapter : reference_adapters()) {
    const SweepReport report = ScenarioRunner(*adapter).sweep(opts);
    SCOPED_TRACE(adapter->name());
    EXPECT_TRUE(report.ok()) << report.str();
    EXPECT_GT(report.schedules_run, 0u);
    EXPECT_LE(report.schedules_run, opts.strategies.max_schedules);
    any_truncated |= !report.truncations.empty();
    total += report.schedules_run;
  }
  EXPECT_GE(total, 3 * 1107u)
      << "the late-delay space must be >= 3x the 1107 halt-only schedules";
  EXPECT_TRUE(any_truncated)
      << "the full per-ordinal cross products exceed the caps somewhere — "
         "truncation must be reported, never silent";
}

TEST(StrategySweep, ScheduleLabelsRenderDelaysAndVariants) {
  const auto two_party = ProtocolRegistry::global().make("two-party");
  std::set<std::string> labels;
  for (const Schedule& s : ScenarioRunner(*two_party).enumerate(
           with_strategies(StrategySpace::Kind::kTimelyDelays))) {
    labels.insert(s.label);
  }
  EXPECT_EQ(labels.count("hedged-two-party[d0+1,conform]"), 1u);
  EXPECT_EQ(labels.count("hedged-two-party[conform,d0+1.d1+1.d2+1]"), 1u);

  const auto auction = ProtocolRegistry::global().make("auction-open");
  std::set<std::string> auction_labels;
  for (const Schedule& s : ScenarioRunner(*auction).enumerate(
           with_strategies(StrategySpace::Kind::kTimelyDelays))) {
    auction_labels.insert(s.label);
  }
  EXPECT_EQ(auction_labels.count("ticket-auction[no-setup,conform,conform]"),
            1u);
  EXPECT_EQ(auction_labels.count("ticket-auction[honest,d0+1,conform]"), 1u);
}

/// Synthetic adapter whose victim (party 0) loses a coin whenever party 1
/// delays anything — a violation factory for label plumbing.
class GrudgeAdapter final : public ProtocolAdapter {
 public:
  std::string name() const override { return "grudge"; }
  std::size_t party_count() const override { return 2; }
  int action_count(PartyId) const override { return 1; }
  Tick delta() const override { return 2; }
  std::unique_ptr<ProtocolAdapter> clone() const override {
    return std::make_unique<GrudgeAdapter>(*this);
  }
  std::vector<PartyOutcome> run(const Schedule& s) const override {
    const bool grudge = s.plans[1].has_mods();
    PartyOutcome victim{"victim", true, {}, {}};
    victim.payoff.coin_delta = grudge ? -1 : 0;
    PartyOutcome thief{"thief", false, {}, {}};
    thief.payoff.coin_delta = grudge ? 1 : 0;
    return {std::move(victim), std::move(thief)};
  }
};

TEST(StrategySweep, ViolationLabelsCarryTheFullPolicy) {
  GrudgeAdapter adapter;
  const SweepReport report = ScenarioRunner(adapter).sweep(
      with_strategies(StrategySpace::Kind::kLateDelays));
  ASSERT_FALSE(report.violations.empty());
  std::set<std::string> schedules;
  for (const Violation& v : report.violations) {
    schedules.insert(v.schedule);
  }
  EXPECT_EQ(schedules.count("grudge[conform,d0+1]"), 1u);
  EXPECT_EQ(schedules.count("grudge[conform,d0+4]"), 1u);
  EXPECT_EQ(schedules.count("grudge[halt@0,d0+2]"), 1u);
}

// ---------------------------------------------------------------------------
// Negative regressions: the unhedged baselines breach the hedged floor
// under LATE-DELAY schedules — not just under halts.
// ---------------------------------------------------------------------------

TEST(StrategySweep, UnhedgedTwoPartyBreachesHedgedFloorUnderLateDelay) {
  const core::TwoPartyConfig cfg = reference_two_party_config();
  // Bob delays his principal escrow past the contract deadline (2 * delta
  // past enablement): Alice's escrowed principal sits locked until her
  // timelock refund, with no premium machinery to compensate her.
  const DeviationPlan alice = DeviationPlan::conforming();
  const DeviationPlan bob =
      DeviationPlan::conforming().delayed(0, 2 * cfg.delta);
  const auto r = core::run_base_two_party(cfg, alice, bob);
  EXPECT_FALSE(r.swapped);
  ASSERT_GT(r.alice_lockup, 0) << "Alice must have been locked and refunded";

  std::vector<PartyOutcome> outcomes;
  outcomes.push_back({"alice", alice.conforms_within(cfg.delta), r.alice, {}});
  outcomes.back().bound.min_coin_delta = 1;  // the hedged expectation
  outcomes.push_back({"bob", bob.conforms_within(cfg.delta), r.bob, {}});
  EXPECT_FALSE(outcomes[1].conforming)
      << "a past-the-bound delay is a deviation";

  std::vector<Violation> violations;
  audit_schedule("base-two-party[conform," + bob.str() + "]", outcomes,
                 violations);
  ASSERT_EQ(violations.size(), 1u)
      << "the premium-free baseline must breach the hedged floor";
  EXPECT_EQ(violations[0].party, "alice");
  EXPECT_EQ(violations[0].schedule, "base-two-party[conform,d0+4]");
}

TEST(StrategySweep, PremiumFreeBrokerBreachesHedgedFloorUnderLateDelay) {
  ParamSet params = ProtocolRegistry::global().defaults("broker");
  params.set("premium_unit", "0");
  const core::BrokerConfig cfg = broker_config_from(params);
  // Alice (the broker) delays her trades past the trading deadline: the
  // sellers' principals were locked the whole time and come back
  // uncompensated — with p = 0 there is nothing to award them.
  const DeviationPlan honest = DeviationPlan::conforming();
  const DeviationPlan late_alice =
      DeviationPlan::conforming().delayed(2, 4 * cfg.delta);
  const auto r = core::run_broker_deal(cfg, late_alice, honest, honest);
  ASSERT_TRUE(r.bob_lockup > 0 || r.carol_lockup > 0);

  std::vector<PartyOutcome> outcomes;
  outcomes.push_back(
      {"alice", late_alice.conforms_within(cfg.delta), r.alice, {}});
  outcomes.push_back({"bob", true, r.bob, {}});
  if (r.bob_lockup > 0) outcomes.back().bound.min_coin_delta = 1;
  outcomes.push_back({"carol", true, r.carol, {}});
  if (r.carol_lockup > 0) outcomes.back().bound.min_coin_delta = 1;

  std::vector<Violation> violations;
  audit_schedule("p0-broker[" + late_alice.str() + ",conform,conform]",
                 outcomes, violations);
  EXPECT_FALSE(violations.empty())
      << "premium-free broker lock-ups under a late-delay schedule must "
         "breach the hedged floor";
}

// ---------------------------------------------------------------------------
// Campaign plumbing: dry-run counts, strategy-space options validation.
// ---------------------------------------------------------------------------

TEST(StrategySweep, DryRunCountsMatchTheActualSweep) {
  CampaignSpec spec;
  spec.entries.push_back({"two-party", {}, {}});
  spec.entries.push_back({"bootstrap", {}, {}});
  spec.sweep.strategies.kind = StrategySpace::Kind::kLateDelays;

  const Campaign campaign(spec);
  const DryRunReport preview = campaign.dry_run();
  const CampaignReport actual = campaign.run();
  ASSERT_EQ(preview.configs.size(), actual.configs.size());
  for (std::size_t i = 0; i < preview.configs.size(); ++i) {
    EXPECT_EQ(preview.configs[i].schedules,
              actual.configs[i].report.schedules_run)
        << preview.configs[i].line();
  }
  EXPECT_EQ(preview.total_schedules(), actual.total_schedules());
  EXPECT_TRUE(actual.ok()) << actual.str();
  // The late-delay spaces overflow their caps here; BOTH reports must
  // surface the truncation notices — a dry run has to be as loud about
  // capping as the run it previews.
  EXPECT_FALSE(actual.truncations.empty());
  EXPECT_EQ(preview.truncations, actual.truncations);
  // The report records its own strategy space, so serialization can never
  // mislabel the coverage (campaign_json reads it from the report).
  EXPECT_EQ(actual.strategies.name(), "late-delays");
  EXPECT_NE(campaign_json(actual).find("\"strategies\": \"late-delays\""),
            std::string::npos);
}

TEST(StrategySweep, ZeroStrategyCapsAreRejected) {
  const auto adapter = ProtocolRegistry::global().make("two-party");
  SweepOptions opts;
  opts.strategies.max_plans_per_party = 0;
  EXPECT_THROW(ScenarioRunner(*adapter).sweep(opts), std::invalid_argument);
  opts.strategies.max_plans_per_party = 64;
  opts.strategies.max_schedules = 0;
  EXPECT_THROW(ScenarioRunner(*adapter).sweep(opts), std::invalid_argument);
}

}  // namespace
}  // namespace xchain::sim
