#include <gtest/gtest.h>

#include "chain/blockchain.hpp"
#include "contracts/ladder.hpp"
#include "crypto/secret.hpp"

namespace xchain::contracts {
namespace {

using chain::Address;
using chain::MultiChain;
using chain::TxContext;
using RS = LadderContract::RungState;

constexpr PartyId kAlice = 0;
constexpr PartyId kBob = 1;

// A 2-round apricot-side ladder (Figure 2): rung 0 = Alice's principal
// 10000 apricot, rung 1 = Bob's premium 100, rung 2 = Alice's premium 1.
// Deadlines (Delta = 2): rung 2 at 4, rung 1 at 8, rung 0 at 10;
// redemption at 16.
class LadderFixture : public ::testing::Test {
 protected:
  LadderFixture()
      : bc_(chains_.add_chain("apricot")),
        secret_(crypto::Secret::from_label("s")),
        ladder_(bc_.deploy<LadderContract>(LadderContract::Params{
            {{kAlice, 10'000, 10, {}, false},
             {kBob, 100, 8, {}, false},
             // A^(2): released by the principal, forfeited on its default.
             {kAlice, 1, 4, /*released_by=*/std::size_t{0},
              /*guards_principal=*/true}},
            kBob,
            "apricot",
            secret_.hashlock(),
            16})) {
    bc_.ledger_for_setup().mint(Address::party(kAlice), "apricot", 10'000);
    bc_.ledger_for_setup().mint(Address::party(kAlice), bc_.native(), 1);
    bc_.ledger_for_setup().mint(Address::party(kBob), bc_.native(), 100);
  }

  void deposit(PartyId who, std::size_t rung, Tick t) {
    bc_.submit({who, "deposit",
                [this, rung](TxContext& c) { ladder_.deposit(c, rung); }});
    produce_until(t);
  }
  void redeem(PartyId who, Tick t, const crypto::Bytes& preimage) {
    bc_.submit({who, "redeem", [this, preimage](TxContext& c) {
                  ladder_.redeem(c, preimage);
                }});
    produce_until(t);
  }
  void produce_until(Tick t) {
    for (Tick now = bc_.height() + 1; now <= t; ++now) {
      chains_.produce_all(now);
    }
  }
  Amount coins(PartyId p) {
    return bc_.ledger().balance(Address::party(p), bc_.native());
  }
  Amount tokens(PartyId p) {
    return bc_.ledger().balance(Address::party(p), "apricot");
  }

  MultiChain chains_;
  chain::Blockchain& bc_;
  crypto::Secret secret_;
  LadderContract& ladder_;
};

TEST_F(LadderFixture, HappyPathDepositsGuardReleaseAndRedeem) {
  deposit(kAlice, 2, 0);
  EXPECT_EQ(ladder_.rung_state(2), RS::kHeld);
  deposit(kBob, 1, 1);
  EXPECT_EQ(ladder_.rung_state(1), RS::kHeld);
  // Depositing rung 0 releases its guard, rung 2.
  deposit(kAlice, 0, 2);
  EXPECT_EQ(ladder_.rung_state(0), RS::kHeld);
  EXPECT_EQ(ladder_.rung_state(2), RS::kRefunded);
  EXPECT_EQ(coins(kAlice), 1);
  // Redemption pays Bob and refunds his premium (rung 1).
  redeem(kBob, 3, secret_.value());
  EXPECT_TRUE(ladder_.principal_redeemed());
  EXPECT_EQ(ladder_.rung_state(1), RS::kRefunded);
  EXPECT_EQ(tokens(kBob), 10'000);
  EXPECT_EQ(coins(kBob), 100);
  EXPECT_FALSE(ladder_.dead());
}

TEST_F(LadderFixture, OutOfOrderDepositRejected) {
  deposit(kBob, 1, 0);  // rung 2 not yet deposited
  EXPECT_EQ(ladder_.rung_state(1), RS::kEmpty);
  EXPECT_EQ(coins(kBob), 100);
}

TEST_F(LadderFixture, WrongDepositorRejected) {
  bc_.submit({kBob, "deposit",
              [this](TxContext& c) { ladder_.deposit(c, 2); }});
  chains_.produce_all(0);
  EXPECT_EQ(ladder_.rung_state(2), RS::kEmpty);
}

TEST_F(LadderFixture, MissedFirstRungKillsQuietly) {
  // Nobody deposits rung 2: at its deadline the ladder dies with nothing
  // held and nothing forfeited (the unprotected step).
  produce_until(5);
  EXPECT_TRUE(ladder_.dead());
  EXPECT_EQ(coins(kAlice), 1);
  EXPECT_EQ(coins(kBob), 100);
}

TEST_F(LadderFixture, MissedMiddleRungRefundsHeld) {
  deposit(kAlice, 2, 0);
  // Bob never deposits rung 1 (deadline 8): guard of rung 1 would be rung
  // 3 (absent), so Alice's rung 2 is simply refunded.
  produce_until(9);
  EXPECT_TRUE(ladder_.dead());
  EXPECT_EQ(ladder_.rung_state(2), RS::kRefunded);
  EXPECT_EQ(coins(kAlice), 1);
}

TEST_F(LadderFixture, MissedPrincipalForfeitsGuardToCounterparty) {
  deposit(kAlice, 2, 0);
  deposit(kBob, 1, 1);
  // Alice never escrows the principal (deadline 10): her guard (rung 2) is
  // forfeited to Bob — "If Alice does not deposit her principal, Bob
  // receives A^(2) as compensation for locking up A^(1)" — and Bob's rung
  // 1 is refunded.
  produce_until(11);
  EXPECT_TRUE(ladder_.dead());
  EXPECT_EQ(ladder_.rung_state(2), RS::kForfeited);
  EXPECT_EQ(ladder_.rung_state(1), RS::kRefunded);
  EXPECT_EQ(coins(kBob), 101);  // his 100 back plus Alice's 1
  EXPECT_EQ(coins(kAlice), 0);
}

TEST_F(LadderFixture, UnredeemedPrincipalAwardsRungOneToOwner) {
  deposit(kAlice, 2, 0);
  deposit(kBob, 1, 1);
  deposit(kAlice, 0, 2);
  // Nobody redeems: at the redemption deadline the principal refunds to
  // Alice and Bob's premium (rung 1) is awarded to her.
  produce_until(17);
  EXPECT_EQ(ladder_.rung_state(0), RS::kRefunded);
  EXPECT_EQ(ladder_.rung_state(1), RS::kForfeited);
  EXPECT_EQ(tokens(kAlice), 10'000);
  // Her guard (rung 2, 1 coin) was refunded when she escrowed the
  // principal; Bob's rung 1 (100) is awarded on top: 101 total.
  EXPECT_EQ(coins(kAlice), 101);
  EXPECT_EQ(coins(kBob), 0);
}

TEST_F(LadderFixture, LateRedeemRejected) {
  deposit(kAlice, 2, 0);
  deposit(kBob, 1, 1);
  deposit(kAlice, 0, 2);
  produce_until(16);
  redeem(kBob, 17, secret_.value());
  EXPECT_FALSE(ladder_.principal_redeemed());
  EXPECT_EQ(ladder_.rung_state(0), RS::kRefunded);
}

TEST_F(LadderFixture, WrongPreimageRejected) {
  deposit(kAlice, 2, 0);
  deposit(kBob, 1, 1);
  deposit(kAlice, 0, 2);
  redeem(kBob, 3, crypto::Secret::from_label("wrong").value());
  EXPECT_FALSE(ladder_.principal_redeemed());
}

TEST_F(LadderFixture, LateDepositRejected) {
  produce_until(4);  // rung 2 deadline is 4
  deposit(kAlice, 2, 5);
  EXPECT_EQ(ladder_.rung_state(2), RS::kEmpty);
  EXPECT_TRUE(ladder_.dead());
}

TEST_F(LadderFixture, DepositAfterDeathRejected) {
  produce_until(5);  // ladder dead (rung 2 missed)
  ASSERT_TRUE(ladder_.dead());
  deposit(kAlice, 2, 6);
  EXPECT_EQ(ladder_.rung_state(2), RS::kEmpty);
}

TEST(LadderContractValidation, RejectsEmptyAndBadDeadlines) {
  EXPECT_THROW(LadderContract(LadderContract::Params{
                   {}, kBob, "x", crypto::Digest{}, 10}),
               std::invalid_argument);
  // Deadlines must strictly decrease with rung index.
  EXPECT_THROW(LadderContract(LadderContract::Params{
                   {{kAlice, 10, 4, {}, false}, {kBob, 1, 8, {}, false}},
                   kBob,
                   "x",
                   crypto::Digest{},
                   10}),
               std::invalid_argument);
}

TEST(LadderSingleRound, MatchesHedgedSwapSemantics) {
  // rounds = 1 ladder: rung 0 principal (deadline 6), rung 1 premium
  // (deadline 4), redemption 12 — exactly a §5.2 contract.
  MultiChain chains;
  auto& bc = chains.add_chain("apricot");
  const auto s = crypto::Secret::from_label("s");
  auto& ladder = bc.deploy<LadderContract>(LadderContract::Params{
      {{kAlice, 500, 6, {}, false}, {kBob, 5, 4, {}, false}}, kBob, "apricot", s.hashlock(), 12});
  bc.ledger_for_setup().mint(Address::party(kAlice), "apricot", 500);
  bc.ledger_for_setup().mint(Address::party(kBob), bc.native(), 5);

  bc.submit({kBob, "premium", [&](TxContext& c) { ladder.deposit(c, 1); }});
  chains.produce_all(0);
  bc.submit({kAlice, "escrow", [&](TxContext& c) { ladder.deposit(c, 0); }});
  chains.produce_all(1);
  // Unredeemed: premium awarded to Alice at redemption deadline.
  for (Tick t = 2; t <= 13; ++t) chains.produce_all(t);
  EXPECT_EQ(ladder.rung_state(0), RS::kRefunded);
  EXPECT_EQ(ladder.rung_state(1), RS::kForfeited);
  EXPECT_EQ(bc.ledger().balance(Address::party(kAlice), bc.native()), 5);
}

}  // namespace
}  // namespace xchain::contracts
