#include <gtest/gtest.h>

#include "chain/blockchain.hpp"
#include "sim/deviation.hpp"
#include "sim/party.hpp"
#include "sim/scheduler.hpp"

namespace xchain::sim {
namespace {

class RecordingParty : public Party {
 public:
  RecordingParty(PartyId id, chain::Blockchain& bc)
      : Party(id, "rec-" + std::to_string(id)), bc_(bc) {}

  void step(chain::MultiChain& chains, Tick now) override {
    ticks_seen.push_back(now);
    heights_seen.push_back(bc_.height());
    chains.at(bc_.id()).submit(
        {id(), "noop", [](chain::TxContext&) {}});
  }

  std::vector<Tick> ticks_seen;
  std::vector<Tick> heights_seen;

 private:
  chain::Blockchain& bc_;
};

TEST(Scheduler, RunsEveryTickInOrder) {
  chain::MultiChain chains;
  auto& bc = chains.add_chain("test");
  RecordingParty p(0, bc);
  Scheduler sched(chains);
  sched.add_party(p);
  sched.run_until(5);
  EXPECT_EQ(p.ticks_seen, (std::vector<Tick>{0, 1, 2, 3, 4}));
  EXPECT_EQ(sched.now(), 5);
  EXPECT_EQ(bc.height(), 4);
}

TEST(Scheduler, PartiesObservePreviousBlockState) {
  // At tick t a party sees the chain at height t-1: the Delta = 1-tick
  // propagation bound of §3.1.
  chain::MultiChain chains;
  auto& bc = chains.add_chain("test");
  RecordingParty p(0, bc);
  Scheduler sched(chains);
  sched.add_party(p);
  sched.run_until(3);
  EXPECT_EQ(p.heights_seen, (std::vector<Tick>{-1, 0, 1}));
}

TEST(Scheduler, SubmittedTransactionsLandSameTick) {
  chain::MultiChain chains;
  auto& bc = chains.add_chain("test");
  RecordingParty p(0, bc);
  Scheduler sched(chains);
  sched.add_party(p);
  sched.run_until(4);
  EXPECT_EQ(bc.applied_tx_count(), 4u);
}

TEST(Scheduler, ResumableRuns) {
  chain::MultiChain chains;
  auto& bc = chains.add_chain("test");
  RecordingParty p(0, bc);
  Scheduler sched(chains);
  sched.add_party(p);
  sched.run_until(2);
  sched.run_until(2);  // no-op
  sched.run_until(5);
  EXPECT_EQ(p.ticks_seen.size(), 5u);
}

TEST(Scheduler, MultiplePartiesStepInIdOrderWithinTick) {
  chain::MultiChain chains;
  auto& bc = chains.add_chain("test");
  std::vector<PartyId> order;

  class OrderParty : public Party {
   public:
    OrderParty(PartyId id, std::vector<PartyId>& order)
        : Party(id, "p"), order_(order) {}
    void step(chain::MultiChain&, Tick) override { order_.push_back(id()); }
    std::vector<PartyId>& order_;
  };

  OrderParty a(2, order), b(0, order);
  Scheduler sched(chains);
  sched.add_party(a);  // registration order, not id order, is used
  sched.add_party(b);
  sched.run_until(2);
  EXPECT_EQ(order, (std::vector<PartyId>{2, 0, 2, 0}));
  (void)bc;
}

TEST(DeviationPlan, ConformingAllowsEverything) {
  const auto plan = DeviationPlan::conforming();
  EXPECT_TRUE(plan.is_conforming());
  EXPECT_TRUE(plan.allows(0));
  EXPECT_TRUE(plan.allows(1000));
  EXPECT_EQ(plan.str(), "conform");
}

TEST(DeviationPlan, HaltAfterIsPrefix) {
  const auto plan = DeviationPlan::halt_after(2);
  EXPECT_FALSE(plan.is_conforming());
  EXPECT_TRUE(plan.allows(0));
  EXPECT_TRUE(plan.allows(1));
  EXPECT_FALSE(plan.allows(2));
  EXPECT_FALSE(plan.allows(3));
  EXPECT_EQ(plan.halt_point(), 2);
  EXPECT_EQ(plan.str(), "halt@2");
}

TEST(DeviationPlan, HaltAtZeroNeverActs) {
  EXPECT_FALSE(DeviationPlan::halt_after(0).allows(0));
}

TEST(DeviationPlan, Equality) {
  EXPECT_EQ(DeviationPlan::conforming(), DeviationPlan::conforming());
  EXPECT_EQ(DeviationPlan::halt_after(1), DeviationPlan::halt_after(1));
  EXPECT_NE(DeviationPlan::halt_after(1), DeviationPlan::halt_after(2));
  EXPECT_NE(DeviationPlan::conforming(), DeviationPlan::halt_after(1));
}

TEST(Party, KeysDerivedFromName) {
  class Dummy : public Party {
   public:
    using Party::Party;
    void step(chain::MultiChain&, Tick) override {}
  };
  Dummy a(0, "alice"), a2(1, "alice"), b(2, "bob");
  EXPECT_EQ(a.keys().pub, a2.keys().pub);  // same name, same keys
  EXPECT_NE(a.keys().pub.y, b.keys().pub.y);
  EXPECT_EQ(a.address(), chain::Address::party(0));
}

}  // namespace
}  // namespace xchain::sim
