// The interned-ID chain substrate: SymbolTable round-trips, the dense
// Ledger book preserves the map-era holdings() order, the (address, symbol)
// keying that the old XOR/shift KeyHash used to (weakly) hash stays
// collision-free by construction, and checkpoint/restore — the world-reuse
// primitive — rolls balances back exactly.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "chain/blockchain.hpp"
#include "chain/ledger.hpp"
#include "common/symbol.hpp"
#include "sim/scheduler.hpp"

namespace xchain {
namespace {

using chain::Address;
using chain::Ledger;

TEST(SymbolTable, RoundTripAndUniqueness) {
  const SymbolId a = SymbolTable::intern("symtest-apricot");
  const SymbolId b = SymbolTable::intern("symtest-banana");
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_NE(a, b);
  EXPECT_EQ(SymbolTable::name(a), "symtest-apricot");
  EXPECT_EQ(SymbolTable::name(b), "symtest-banana");

  // Interning is idempotent: same name, same id, no growth.
  const std::size_t size_before = SymbolTable::size();
  EXPECT_EQ(SymbolTable::intern("symtest-apricot"), a);
  EXPECT_EQ(SymbolTable::intern("symtest-banana"), b);
  EXPECT_EQ(SymbolTable::size(), size_before);
}

TEST(SymbolTable, DefaultIdIsInvalid) {
  const SymbolId none;
  EXPECT_FALSE(none.valid());
}

TEST(SymbolTable, DistinctNamesGetDistinctDenseIds) {
  std::set<std::uint32_t> ids;
  for (int i = 0; i < 64; ++i) {
    const SymbolId id =
        SymbolTable::intern("symtest-unique-" + std::to_string(i));
    EXPECT_TRUE(id.valid());
    EXPECT_LT(id.value(), SymbolTable::size());
    ids.insert(id.value());
  }
  EXPECT_EQ(ids.size(), 64u);
}

TEST(SymbolTable, ConcurrentInterningIsConsistent) {
  // Worker threads intern chain symbols while building per-worker worlds;
  // racing interns of the same name must agree on one id.
  constexpr int kThreads = 8;
  std::vector<SymbolId> ids(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&ids, t] {
      ids[t] = SymbolTable::intern("symtest-racing");
    });
  }
  for (auto& th : pool) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(ids[t], ids[0]);
  EXPECT_EQ(SymbolTable::name(ids[0]), "symtest-racing");
}

// ---------------------------------------------------------------------------
// Dense ledger
// ---------------------------------------------------------------------------

TEST(DenseLedger, SymbolIdAndStringApisAgree) {
  Ledger l;
  const SymbolId apple = SymbolTable::intern("dl-apple");
  l.mint(Address::party(1), apple, 10);
  EXPECT_EQ(l.balance(Address::party(1), "dl-apple"), 10);
  EXPECT_EQ(l.balance(Address::party(1), apple), 10);
  EXPECT_TRUE(l.transfer(Address::party(1), Address::party(2), "dl-apple", 4));
  EXPECT_EQ(l.balance(Address::party(2), apple), 4);
  EXPECT_EQ(l.balance(Address::party(1), apple), 6);
}

TEST(DenseLedger, HoldingsOrderMatchesMapEraContract) {
  // holdings() must stay sorted by (kind, id, symbol name) — the exact
  // order the pre-dense map-and-sort implementation produced, which payoff
  // accounting and traces rely on. Interning order is deliberately
  // shuffled relative to name order.
  Ledger l;
  l.mint(Address::contract(0), "dl-zeta", 1);
  l.mint(Address::party(2), "dl-zeta", 2);
  l.mint(Address::party(2), "dl-alpha", 3);
  l.mint(Address::party(0), "dl-mid", 4);
  l.mint(Address::party(2), "dl-mid", 5);

  const auto h = l.holdings();
  ASSERT_EQ(h.size(), 5u);
  // Parties first (id ascending), contracts after; names ascending within.
  EXPECT_EQ(h[0], std::make_tuple(Address::party(0), std::string("dl-mid"),
                                  Amount{4}));
  EXPECT_EQ(h[1], std::make_tuple(Address::party(2), std::string("dl-alpha"),
                                  Amount{3}));
  EXPECT_EQ(h[2], std::make_tuple(Address::party(2), std::string("dl-mid"),
                                  Amount{5}));
  EXPECT_EQ(h[3], std::make_tuple(Address::party(2), std::string("dl-zeta"),
                                  Amount{2}));
  EXPECT_EQ(h[4], std::make_tuple(Address::contract(0),
                                  std::string("dl-zeta"), Amount{1}));
}

TEST(DenseLedger, KeyCollisionRegressionGrid) {
  // Regression for the deleted KeyHash: hash(who) ^ (hash(sym) << 1)
  // XOR-folded address and symbol hashes, so (party i, sym j) families
  // could collide structurally (e.g. addresses differing only in the bit
  // the shifted symbol hash cancelled). The dense book keys cells by
  // (kind, id, column) directly — a grid of near-identical keys must stay
  // perfectly separated.
  Ledger l;
  constexpr int kAddrs = 32;
  constexpr int kSyms = 8;
  for (int a = 0; a < kAddrs; ++a) {
    for (int s = 0; s < kSyms; ++s) {
      const Amount amount = a * 100 + s + 1;
      l.mint(Address::party(a), "grid-" + std::to_string(s), amount);
      l.mint(Address::contract(a), "grid-" + std::to_string(s), amount + 7);
    }
  }
  for (int a = 0; a < kAddrs; ++a) {
    for (int s = 0; s < kSyms; ++s) {
      const Amount amount = a * 100 + s + 1;
      EXPECT_EQ(l.balance(Address::party(a), "grid-" + std::to_string(s)),
                amount);
      EXPECT_EQ(l.balance(Address::contract(a), "grid-" + std::to_string(s)),
                amount + 7);
    }
  }
  EXPECT_EQ(l.holdings().size(),
            static_cast<std::size_t>(2 * kAddrs * kSyms));
}

TEST(DenseLedger, CheckpointRestoreRollsBackExactly) {
  Ledger l;
  l.mint(Address::party(0), "cr-token", 100);
  l.mint(Address::party(1), "cr-coin", 50);
  l.checkpoint();

  EXPECT_TRUE(l.transfer(Address::party(0), Address::party(1), "cr-token",
                         60));
  l.mint(Address::party(2), "cr-late-symbol", 9);  // row AND column growth
  EXPECT_EQ(l.balance(Address::party(0), "cr-token"), 40);
  EXPECT_EQ(l.balance(Address::party(1), "cr-token"), 60);

  l.restore();
  EXPECT_EQ(l.balance(Address::party(0), "cr-token"), 100);
  EXPECT_EQ(l.balance(Address::party(1), "cr-token"), 0);
  EXPECT_EQ(l.balance(Address::party(1), "cr-coin"), 50);
  EXPECT_EQ(l.balance(Address::party(2), "cr-late-symbol"), 0);
  EXPECT_EQ(l.holdings().size(), 2u);

  // Restore is repeatable (reset-per-schedule semantics).
  EXPECT_TRUE(l.transfer(Address::party(1), Address::party(0), "cr-coin", 50));
  l.restore();
  EXPECT_EQ(l.balance(Address::party(1), "cr-coin"), 50);
}

TEST(DenseLedger, RestoreWithoutCheckpointThrows) {
  // A restore with no baseline used to silently empty the balance book —
  // a missed checkpoint() in a sweep world would zero every endowment and
  // turn all payoffs into nonsense. It is a hard error now.
  Ledger l;
  l.mint(Address::party(0), "rc-token", 5);
  EXPECT_THROW(l.restore(), std::logic_error);
  EXPECT_EQ(l.balance(Address::party(0), "rc-token"), 5);
}

// ---------------------------------------------------------------------------
// TraceMode
// ---------------------------------------------------------------------------

TEST(TraceMode, OffSuppressesEventsAndNotes) {
  chain::MultiChain chains;
  chains.set_trace(chain::TraceMode::kOff);
  chain::Blockchain& bc = chains.add_chain("traceless");
  EXPECT_FALSE(bc.tracing());

  bc.ledger_for_setup().mint(Address::party(0), "traceless-coin", 10);
  bc.submit({0, "", [](chain::TxContext& ctx) {
               EXPECT_FALSE(ctx.tracing());
               ctx.emit(0, "should_be_dropped");
               ctx.ledger().transfer(Address::party(0), Address::party(1),
                                     ctx.native_id(), 3);
             }});
  bc.produce_block(0);

  EXPECT_TRUE(bc.events().empty());
  EXPECT_EQ(bc.ledger().balance(Address::party(1), "traceless-coin"), 3);
  EXPECT_EQ(bc.applied_tx_count(), 1u);
}

TEST(TraceMode, FullKeepsEvents) {
  chain::MultiChain chains;  // default kFull
  chain::Blockchain& bc = chains.add_chain("traced");
  EXPECT_TRUE(bc.tracing());
  bc.submit({0, "note", [](chain::TxContext& ctx) {
               ctx.emit(0, "kept", "detail");
             }});
  bc.produce_block(0);
  ASSERT_EQ(bc.events().size(), 1u);
  EXPECT_EQ(bc.events()[0].kind, "kept");
}

TEST(TraceMode, SchedulerConstructorAppliesModeToAllChains) {
  chain::MultiChain chains;
  chain::Blockchain& bc = chains.add_chain("sched-trace");
  EXPECT_TRUE(bc.tracing());
  // The convenience constructor for driving existing chains traceless:
  // it switches the whole MultiChain (a deliberate, persistent side
  // effect — the mode outlives the Scheduler).
  const sim::Scheduler sched(chains, chain::TraceMode::kOff);
  EXPECT_EQ(sched.now(), 0);
  EXPECT_FALSE(bc.tracing());
  EXPECT_EQ(chains.trace(), chain::TraceMode::kOff);
  // Chains added later inherit the mode too.
  EXPECT_FALSE(chains.add_chain("sched-trace-late").tracing());
}

TEST(TraceMode, MultiChainResetClearsRunState) {
  chain::MultiChain chains;
  chain::Blockchain& bc = chains.add_chain("resettable");
  bc.ledger_for_setup().mint(Address::party(0), bc.native(), 100);
  chains.checkpoint();

  bc.submit({0, "spend", [](chain::TxContext& ctx) {
               ctx.ledger().transfer(Address::party(0), Address::party(1),
                                     ctx.native_id(), 25);
               ctx.emit(0, "spent");
             }});
  chains.produce_all(0);
  EXPECT_EQ(bc.ledger().balance(Address::party(1), bc.native()), 25);
  EXPECT_EQ(bc.height(), 0);
  EXPECT_FALSE(bc.events().empty());

  chains.reset();
  EXPECT_EQ(bc.ledger().balance(Address::party(0), bc.native()), 100);
  EXPECT_EQ(bc.ledger().balance(Address::party(1), bc.native()), 0);
  EXPECT_EQ(bc.height(), -1);
  EXPECT_TRUE(bc.events().empty());
  EXPECT_EQ(bc.applied_tx_count(), 0u);
}

}  // namespace
}  // namespace xchain
